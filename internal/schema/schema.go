// Package schema defines the SkyServer relational schema of §9.1: the
// photographic and spectrographic snowflake schemas of Figure 7, the
// subclassing views (photoPrimary / Star / Galaxy), the index set, the
// foreign keys, the flag vocabularies behind fPhotoFlags/fPhotoType, and the
// HTM-backed spatial access functions of §9.1.4.
package schema

import (
	"fmt"

	"skyserver/internal/shard"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// HTMDepth is the depth at which PhotoObj.htmID is stored; the paper uses
// 20-deep HTMs (§9.1.4).
const HTMDepth = 20

// Bands are the five SDSS optical bands.
var Bands = []string{"u", "g", "r", "i", "z"}

// MagKinds are the six ways magnitudes are measured ("These magnitudes are
// measured in six different ways (for a total of 60 attributes)").
var MagKinds = []string{"psf", "fiber", "petro", "model", "exp", "deV"}

// PhotoType codes, from the SDSS photo pipeline classification (§9: stars,
// galaxies, trails (cosmic ray, satellite, …), or some defect).
const (
	TypeUnknown   = 0
	TypeCosmicRay = 1
	TypeDefect    = 2
	TypeGalaxy    = 3
	TypeGhost     = 4
	TypeKnownObj  = 5
	TypeStar      = 6
	TypeTrail     = 7
	TypeSky       = 8
)

// photoTypeNames backs fPhotoType.
var photoTypeNames = map[string]int64{
	"UNKNOWN": TypeUnknown, "COSMIC_RAY": TypeCosmicRay, "DEFECT": TypeDefect,
	"GALAXY": TypeGalaxy, "GHOST": TypeGhost, "KNOWNOBJ": TypeKnownObj,
	"STAR": TypeStar, "TRAIL": TypeTrail, "SKY": TypeSky,
}

// Photo flag bits (a representative subset of the ~100 bit flags the
// pipeline assigns, with the real SDSS bit positions); fPhotoFlags resolves
// names to values so queries can write flags & fPhotoFlags('SATURATED').
var photoFlagValues = map[string]int64{
	"CANONICAL_CENTER":        1 << 0,
	"BRIGHT":                  1 << 1,
	"EDGE":                    1 << 2,
	"BLENDED":                 1 << 3,
	"CHILD":                   1 << 4,
	"PEAKCENTER":              1 << 5,
	"NODEBLEND":               1 << 6,
	"NOPROFILE":               1 << 7,
	"NOPETRO":                 1 << 8,
	"MANYPETRO":               1 << 9,
	"MANYR50":                 1 << 10,
	"MANYR90":                 1 << 11,
	"INCOMPLETE_PROFILE":      1 << 12,
	"INTERP":                  1 << 13,
	"SATURATED":               1 << 14,
	"NOTCHECKED":              1 << 15,
	"SUBTRACTED":              1 << 16,
	"NOSTOKES":                1 << 17,
	"BADSKY":                  1 << 18,
	"PETROFAINT":              1 << 19,
	"TOO_LARGE":               1 << 20,
	"DEBLENDED_AS_PSF":        1 << 21,
	"DEBLEND_PRUNED":          1 << 22,
	"ELLIPFAINT":              1 << 23,
	"BINNED1":                 1 << 24,
	"BINNED2":                 1 << 25,
	"BINNED4":                 1 << 26,
	"MOVED":                   1 << 27,
	"DEBLENDED_AS_MOVING":     1 << 28,
	"NODEBLEND_MOVING":        1 << 29,
	"TOO_FEW_DETECTIONS":      1 << 30,
	"BAD_MOVING_FIT":          1 << 31,
	"STATIONARY":              1 << 32,
	"PEAKS_TOO_CLOSE":         1 << 33,
	"BINNED_CENTER":           1 << 34,
	"LOCAL_EDGE":              1 << 35,
	"BAD_COUNTS_ERROR":        1 << 36,
	"BAD_MOVING_FIT_CHILD":    1 << 37,
	"DEBLEND_UNASSIGNED_FLUX": 1 << 38,
	"SATUR_CENTER":            1 << 39,
	"INTERP_CENTER":           1 << 40,
	"DEBLENDED_AT_EDGE":       1 << 41,
	"DEBLEND_NOPEAK":          1 << 42,
	"PSF_FLUX_INTERP":         1 << 43,
	"TOO_FEW_GOOD_DETECTIONS": 1 << 44,
	"CENTER_OFF_AIMAGE":       1 << 45,
	"DEBLEND_DEGENERATE":      1 << 46,
	"BRIGHTEST_GALAXY_CHILD":  1 << 47,
	"CANONICAL_BAND":          1 << 48,
	"AMOMENT_UNWEIGHTED":      1 << 49,
	"AMOMENT_SHIFT":           1 << 50,
	"AMOMENT_MAXITER":         1 << 51,
	"MAYBE_CR":                1 << 52,
	"MAYBE_EGHOST":            1 << 53,
	"NOTCHECKED_CENTER":       1 << 54,
	"HAS_SATUR_DN":            1 << 55,
	"DEBLEND_PEEPHOLE":        1 << 56,
	"OK_RUN":                  1 << 57,
}

// Modes classify duplicate observations (§9: about 11% of the objects
// appear more than once; the pipeline picks one instance as primary).
const (
	ModePrimary   = 1
	ModeSecondary = 2
	ModeFamily    = 3
)

// SpecClass codes for SpecObj.specClass.
const (
	SpecClassUnknown = 0
	SpecClassStar    = 1
	SpecClassGalaxy  = 2
	SpecClassQSO     = 3
	SpecClassHiZQSO  = 4
	SpecClassSky     = 5
)

// SpecLineNames are the ~30 lines the spectro pipeline extracts per
// spectrogram, with rest wavelengths in Angstroms.
var SpecLineNames = []struct {
	ID   int64
	Name string
	Wave float64
}{
	{1, "Ly_alpha", 1215.67}, {2, "N_V", 1240.81}, {3, "C_IV", 1549.48},
	{4, "He_II", 1640.40}, {5, "C_III", 1908.73}, {6, "Mg_II", 2799.12},
	{7, "O_II_3725", 3727.09}, {8, "O_II_3727", 3729.88}, {9, "H_epsilon", 3971.19},
	{10, "K_3933", 3934.78}, {11, "H_3968", 3969.59}, {12, "H_delta", 4102.89},
	{13, "G_4305", 4305.61}, {14, "H_gamma", 4341.68}, {15, "O_III_4363", 4364.44},
	{16, "H_beta", 4862.68}, {17, "O_III_4959", 4960.30}, {18, "O_III_5007", 5008.24},
	{19, "Mg_5175", 5176.70}, {20, "Na_5894", 5895.60}, {21, "O_I_6300", 6302.05},
	{22, "N_II_6548", 6549.86}, {23, "H_alpha", 6564.61}, {24, "N_II_6583", 6585.27},
	{25, "S_II_6716", 6718.29}, {26, "S_II_6730", 6732.67}, {27, "Ca_II_8498", 8500.36},
	{28, "Ca_II_8542", 8544.44}, {29, "Ca_II_8662", 8664.52}, {30, "P_epsilon", 9548.59},
}

// XCTemplates is the number of cross-correlation templates used by the
// redshift pipeline (xcRedShift stores one row per spectrum × template;
// Table 1's 1.9M rows / 63k spectra ≈ 30).
const XCTemplates = 30

// SkyDB is the built SkyServer database: the engine catalog plus direct
// table handles for the bulk loader.
type SkyDB struct {
	DB *sqlengine.DB

	Field         *sqlengine.Table
	Frame         *sqlengine.Table
	PhotoObj      *sqlengine.Table
	Profile       *sqlengine.Table
	Neighbors     *sqlengine.Table
	Plate         *sqlengine.Table
	SpecObj       *sqlengine.Table
	SpecLine      *sqlengine.Table
	SpecLineIndex *sqlengine.Table
	XCRedShift    *sqlengine.Table
	ELRedShift    *sqlengine.Table
	First         *sqlengine.Table
	Rosat         *sqlengine.Table
	USNO          *sqlengine.Table
	LoadEvents    *sqlengine.Table
}

// Tables lists the Table 1 tables in the paper's order.
func (s *SkyDB) Tables() []*sqlengine.Table {
	return []*sqlengine.Table{
		s.Field, s.Frame, s.PhotoObj, s.Profile, s.Neighbors,
		s.Plate, s.SpecObj, s.SpecLine, s.SpecLineIndex,
		s.XCRedShift, s.ELRedShift,
	}
}

func col(name string, kind val.Kind, desc string) sqlengine.Column {
	return sqlengine.Column{Name: name, Kind: kind, NotNull: true, Desc: desc}
}

func nullableCol(name string, kind val.Kind, desc string) sqlengine.Column {
	return sqlengine.Column{Name: name, Kind: kind, Desc: desc}
}

// bandCols emits one float column per band: family_u … family_z.
func bandCols(family, desc string) []sqlengine.Column {
	out := make([]sqlengine.Column, 0, len(Bands))
	for _, b := range Bands {
		out = append(out, col(family+"_"+b, val.KindFloat, fmt.Sprintf("%s (%s band)", desc, b)))
	}
	return out
}

// photoObjColumns builds the ~220-column PhotoObj schema: identity and
// survey address, classification, position (equatorial + Cartesian + HTM),
// motion, 60 magnitude/error attributes, extents, ellipticities, and the
// remaining per-band pipeline families, approximating the paper's "about
// 400 attributes … about 2KB per record".
func photoObjColumns() []sqlengine.Column {
	cols := []sqlengine.Column{
		col("objID", val.KindInt, "unique object id: bits encode run/rerun/camcol/field/obj"),
		col("skyVersion", val.KindInt, "reprocessing version of the sky"),
		col("run", val.KindInt, "imaging run number"),
		col("rerun", val.KindInt, "processing rerun number"),
		col("camcol", val.KindInt, "camera column (1..6)"),
		col("field", val.KindInt, "field number within the run"),
		col("obj", val.KindInt, "object number within the field"),
		col("mode", val.KindInt, "1=primary, 2=secondary, 3=family"),
		col("nChild", val.KindInt, "number of deblended children"),
		col("parentID", val.KindInt, "objID of deblend parent (0 if none)"),
		col("type", val.KindInt, "morphological classification (3=galaxy, 6=star)"),
		col("flags", val.KindInt, "photo pipeline status bits (see fPhotoFlags)"),
		col("status", val.KindInt, "object status bits"),
		col("primTarget", val.KindInt, "primary spectroscopic target bits"),
		col("secTarget", val.KindInt, "secondary spectroscopic target bits"),
		col("ra", val.KindFloat, "J2000 right ascension (deg)"),
		col("dec", val.KindFloat, "J2000 declination (deg)"),
		col("cx", val.KindFloat, "unit vector x (J2000)"),
		col("cy", val.KindFloat, "unit vector y (J2000)"),
		col("cz", val.KindFloat, "unit vector z (J2000)"),
		col("htmID", val.KindInt, "depth-20 Hierarchical Triangular Mesh id"),
		col("rowc", val.KindFloat, "row center in frame pixels"),
		col("colc", val.KindFloat, "column center in frame pixels"),
		col("rowv", val.KindFloat, "row-direction motion (deg/day)"),
		col("colv", val.KindFloat, "column-direction motion (deg/day)"),
		col("rowvErr", val.KindFloat, "error in rowv"),
		col("colvErr", val.KindFloat, "error in colv"),
	}
	// Shorthand model magnitudes: the paper's color-cut queries write
	// bare u, g, r, i, z.
	for _, b := range Bands {
		cols = append(cols, col(b, val.KindFloat, "model magnitude shorthand ("+b+" band)"))
	}
	// Six magnitude measurements plus errors per band: 60 attributes.
	for _, kind := range MagKinds {
		cols = append(cols, bandCols(kind+"Mag", kind+" magnitude")...)
		cols = append(cols, bandCols(kind+"MagErr", kind+" magnitude error")...)
	}
	// Extents and shapes.
	cols = append(cols, bandCols("petroR50", "radius containing 50% of Petrosian flux (arcsec)")...)
	cols = append(cols, bandCols("petroR90", "radius containing 90% of Petrosian flux (arcsec)")...)
	cols = append(cols, bandCols("isoA", "isophotal major axis (arcsec)")...)
	cols = append(cols, bandCols("isoB", "isophotal minor axis (arcsec)")...)
	cols = append(cols, bandCols("isoPhi", "isophotal position angle (deg)")...)
	cols = append(cols, bandCols("q", "Stokes Q ellipticity parameter")...)
	cols = append(cols, bandCols("u2", "Stokes U ellipticity parameter (u_<band> alias)")...)
	cols = append(cols, bandCols("extinction", "galactic extinction (mag)")...)
	// Remaining pipeline families, per band.
	for _, fam := range []struct{ name, desc string }{
		{"sky", "sky background (maggies/arcsec^2)"},
		{"skyErr", "sky background error"},
		{"texture", "texture parameter"},
		{"lnLStar", "log likelihood of star model"},
		{"lnLExp", "log likelihood of exponential model"},
		{"lnLDeV", "log likelihood of de Vaucouleurs model"},
		{"fracDeV", "fraction of flux in deVaucouleurs component"},
		{"psfWidth", "psf width (arcsec)"},
		{"airmass", "airmass at observation"},
		{"mRrCc", "adaptive second moment"},
		{"mCr4", "adaptive fourth moment"},
		{"offsetRa", "band ra offset (arcsec)"},
		{"offsetDec", "band dec offset (arcsec)"},
		{"expRad", "exponential fit radius (arcsec)"},
		{"deVRad", "deVaucouleurs fit radius (arcsec)"},
	} {
		cols = append(cols, bandCols(fam.name, fam.desc)...)
	}
	cols = append(cols, col("loadTime", val.KindInt, "insert timestamp (ns since epoch); default Current_Timestamp, used by load UNDO"))
	return cols
}

// renameStokesU fixes the u_<band> alias columns: the NEO query writes q_r,
// u_r — but bare "u" is the magnitude shorthand, so the Stokes U family is
// named u_<band> while the magnitude stays "u".
func renameStokesU(cols []sqlengine.Column) {
	for i := range cols {
		switch cols[i].Name {
		case "u2_u":
			cols[i].Name = "u_u"
		case "u2_g":
			cols[i].Name = "u_g"
		case "u2_r":
			cols[i].Name = "u_r"
		case "u2_i":
			cols[i].Name = "u_i"
		case "u2_z":
			cols[i].Name = "u_z"
		}
	}
}

// Build creates the full SkyServer catalog on the file group: tables,
// indices, views, foreign keys, and the scalar + table-valued functions.
func Build(fg *storage.FileGroup) (*SkyDB, error) {
	return BuildGroup(shard.New(shard.EqualSplit(1), []*storage.FileGroup{fg}))
}

// BuildGroup creates the catalog over a shard group: each table's heap
// pages are partitioned across the group's file groups by HTM trixel
// range (spatial tables) or primary-key hash, while indexes and views
// stay global. A 1-shard group behaves exactly like Build.
func BuildGroup(g *shard.Group) (*SkyDB, error) {
	db := sqlengine.NewShardedDB(g)
	s := &SkyDB{DB: db}
	var err error

	// ---- photographic snowflake ----

	s.Field, err = db.CreateTable("Field", []sqlengine.Column{
		col("fieldID", val.KindInt, "unique field id"),
		col("skyVersion", val.KindInt, "sky version"),
		col("run", val.KindInt, "imaging run"),
		col("rerun", val.KindInt, "rerun"),
		col("camcol", val.KindInt, "camera column"),
		col("field", val.KindInt, "field number"),
		col("nObjects", val.KindInt, "objects detected in field"),
		col("nStars", val.KindInt, "stars in field"),
		col("nGalaxy", val.KindInt, "galaxies in field"),
		col("quality", val.KindInt, "field quality grade"),
		col("mjd", val.KindFloat, "modified julian date of observation"),
		col("raMin", val.KindFloat, "field ra lower bound (deg)"),
		col("raMax", val.KindFloat, "field ra upper bound (deg)"),
		col("decMin", val.KindFloat, "field dec lower bound (deg)"),
		col("decMax", val.KindFloat, "field dec upper bound (deg)"),
		nullableCol("calibration", val.KindBytes, "per-field calibration record (PSF, zero points)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"fieldID"}, "Photometric processing unit: one field of one camcol of one run (Figure 6).")
	if err != nil {
		return nil, err
	}

	s.Frame, err = db.CreateTable("Frame", []sqlengine.Column{
		col("frameID", val.KindInt, "unique frame id"),
		col("fieldID", val.KindInt, "field this frame images"),
		col("zoom", val.KindInt, "image pyramid zoom level (1,2,4,8)"),
		col("run", val.KindInt, "imaging run"),
		col("camcol", val.KindInt, "camera column"),
		col("field", val.KindInt, "field number"),
		col("raCen", val.KindFloat, "frame center ra (deg)"),
		col("decCen", val.KindFloat, "frame center dec (deg)"),
		nullableCol("img", val.KindBytes, "RGB tile of the field at this zoom (JPEG in the paper)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"frameID"}, "Image pyramid tiles: each field rendered at 4 zoom levels (§2, §5).")
	if err != nil {
		return nil, err
	}

	photoCols := photoObjColumns()
	renameStokesU(photoCols)
	s.PhotoObj, err = db.CreateTable("PhotoObj", photoCols, []string{"objID"},
		"Every photometric detection: stars, galaxies, trails, defects; ~400 attributes in the real EDR (§9.1.1).")
	if err != nil {
		return nil, err
	}

	s.Profile, err = db.CreateTable("Profile", []sqlengine.Column{
		col("objID", val.KindInt, "object this profile belongs to"),
		col("nBins", val.KindInt, "number of radial bins"),
		nullableCol("profile", val.KindBytes, "mean surface brightness in concentric rings (packed floats)"),
		nullableCol("cutout", val.KindBytes, "5-color atlas cutout of the object's pixels"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"objID"}, "Radial profile array + atlas cutout per object (Figure 7: 'Objects have an image and a profile array').")
	if err != nil {
		return nil, err
	}

	s.Neighbors, err = db.CreateTable("Neighbors", []sqlengine.Column{
		col("objID", val.KindInt, "object"),
		col("neighborObjID", val.KindInt, "neighbor within 1/2 arcminute"),
		col("distance", val.KindFloat, "arcminutes between the pair"),
		col("neighborType", val.KindInt, "neighbor's type"),
		col("neighborMode", val.KindInt, "neighbor's mode"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"objID", "neighborObjID"},
		"Precomputed pairs within 0.5 arcmin (§9.1.1: 'This speeds proximity searches'); ~10 per object.")
	if err != nil {
		return nil, err
	}

	// ---- spectrographic snowflake ----

	s.Plate, err = db.CreateTable("Plate", []sqlengine.Column{
		col("plateID", val.KindInt, "unique plate id"),
		col("mjd", val.KindFloat, "observation MJD"),
		col("ra", val.KindFloat, "plate center ra (deg)"),
		col("dec", val.KindFloat, "plate center dec (deg)"),
		col("nFibers", val.KindInt, "fibers on the plate (~600)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"plateID"}, "Spectroscopic plate: ~600 optical fibers observed at once (§9.1.2).")
	if err != nil {
		return nil, err
	}

	s.SpecObj, err = db.CreateTable("SpecObj", []sqlengine.Column{
		col("specObjID", val.KindInt, "unique spectrum id"),
		col("plateID", val.KindInt, "plate the fiber is on"),
		col("fiberID", val.KindInt, "fiber number on the plate"),
		col("mjd", val.KindFloat, "observation MJD"),
		col("ra", val.KindFloat, "fiber ra (deg)"),
		col("dec", val.KindFloat, "fiber dec (deg)"),
		col("z", val.KindFloat, "final redshift"),
		col("zErr", val.KindFloat, "redshift error"),
		col("zConf", val.KindFloat, "redshift confidence (0..1)"),
		col("zStatus", val.KindInt, "redshift status code"),
		col("specClass", val.KindInt, "spectral classification (2=galaxy, 3=QSO)"),
		col("objID", val.KindInt, "photo counterpart objID (0 if none)"),
		nullableCol("img", val.KindBytes, "spectrum plot (GIF in the paper)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"specObjID"}, "One measured spectrogram per targeted object (§9.1.2).")
	if err != nil {
		return nil, err
	}

	s.SpecLine, err = db.CreateTable("SpecLine", []sqlengine.Column{
		col("specObjID", val.KindInt, "spectrum the line was measured in"),
		col("lineID", val.KindInt, "line id (see SpecLineNames)"),
		col("wave", val.KindFloat, "observed wavelength (Angstrom)"),
		col("waveErr", val.KindFloat, "wavelength error"),
		col("ew", val.KindFloat, "equivalent width (Angstrom)"),
		col("ewErr", val.KindFloat, "equivalent width error"),
		col("height", val.KindFloat, "line height"),
		col("sigma", val.KindFloat, "line width sigma"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"specObjID", "lineID"}, "~30 spectral lines extracted per spectrogram (§9.1.2).")
	if err != nil {
		return nil, err
	}

	s.SpecLineIndex, err = db.CreateTable("SpecLineIndex", []sqlengine.Column{
		col("specObjID", val.KindInt, "spectrum"),
		col("lineID", val.KindInt, "line group id"),
		col("ew", val.KindFloat, "index equivalent width"),
		col("sideBlue", val.KindFloat, "blue sideband level"),
		col("sideRed", val.KindFloat, "red sideband level"),
		col("seeing", val.KindFloat, "seeing during measurement"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"specObjID", "lineID"}, "Quantities from line-group analysis, used to characterize types and ages (§9.1.2).")
	if err != nil {
		return nil, err
	}

	s.XCRedShift, err = db.CreateTable("xcRedShift", []sqlengine.Column{
		col("specObjID", val.KindInt, "spectrum"),
		col("tempNo", val.KindInt, "cross-correlation template number"),
		col("peakZ", val.KindFloat, "redshift at correlation peak"),
		col("z", val.KindFloat, "template-corrected redshift"),
		col("zErr", val.KindFloat, "redshift error"),
		col("r", val.KindFloat, "Tonry-Davis correlation coefficient"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"specObjID", "tempNo"}, "Cross-correlation redshift per template (§9.1.2).")
	if err != nil {
		return nil, err
	}

	s.ELRedShift, err = db.CreateTable("elRedShift", []sqlengine.Column{
		col("specObjID", val.KindInt, "spectrum"),
		col("z", val.KindFloat, "emission-line redshift"),
		col("zErr", val.KindFloat, "redshift error"),
		col("nLines", val.KindInt, "emission lines used"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"specObjID"}, "Redshift derived from emission lines only (§9.1.2).")
	if err != nil {
		return nil, err
	}

	// ---- cross-survey relationship tables ----

	s.First, err = db.CreateTable("First", []sqlengine.Column{
		col("objID", val.KindInt, "matched photo object"),
		col("firstID", val.KindInt, "FIRST catalog id"),
		col("peakFlux", val.KindFloat, "20cm peak flux (mJy)"),
		col("distance", val.KindFloat, "match distance (arcsec)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"objID"}, "Matches to the FIRST 20cm radio survey (§9).")
	if err != nil {
		return nil, err
	}
	s.Rosat, err = db.CreateTable("Rosat", []sqlengine.Column{
		col("objID", val.KindInt, "matched photo object"),
		col("rosatID", val.KindInt, "ROSAT catalog id"),
		col("cps", val.KindFloat, "X-ray counts per second"),
		col("distance", val.KindFloat, "match distance (arcsec)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"objID"}, "Matches to the ROSAT X-ray survey (§9).")
	if err != nil {
		return nil, err
	}
	s.USNO, err = db.CreateTable("USNO", []sqlengine.Column{
		col("objID", val.KindInt, "matched photo object"),
		col("usnoID", val.KindInt, "USNO catalog id"),
		col("properMotion", val.KindFloat, "proper motion (arcsec/century)"),
		col("distance", val.KindFloat, "match distance (arcsec)"),
		col("loadTime", val.KindInt, "insert timestamp"),
	}, []string{"objID"}, "Matches to the US Naval Observatory catalog (§9).")
	if err != nil {
		return nil, err
	}

	// ---- loader bookkeeping ----

	s.LoadEvents, err = db.CreateTable("loadEvents", []sqlengine.Column{
		col("eventID", val.KindInt, "load step id"),
		col("tableName", val.KindString, "table the step loaded"),
		col("sourceFile", val.KindString, "CSV file the step read"),
		col("startTime", val.KindInt, "step start (ns since epoch)"),
		col("stopTime", val.KindInt, "step stop (ns since epoch)"),
		col("sourceRows", val.KindInt, "rows in the source file"),
		col("insertedRows", val.KindInt, "rows actually inserted"),
		col("status", val.KindString, "ok | failed | undone"),
		nullableCol("trace", val.KindString, "error trace for failed steps"),
	}, []string{"eventID"}, "Journal of load steps: start/stop time and row counts, driving UNDO (§9.4).")
	if err != nil {
		return nil, err
	}

	if err := buildIndexes(db); err != nil {
		return nil, err
	}
	if err := buildViews(db); err != nil {
		return nil, err
	}
	if err := buildForeignKeys(db); err != nil {
		return nil, err
	}
	registerFunctions(s)
	return s, nil
}

// buildIndexes creates the index set. "Today, the SkyServer database has
// tens of indices … About 30% of the SkyServer storage space is devoted to
// indices" (§9.1.3).
func buildIndexes(db *sqlengine.DB) error {
	type ix struct {
		table, name string
		keys, incl  []string
	}
	indexes := []ix{
		// The spatial index: HTM ids with the position and identity
		// columns included, so fGetNearbyObjEq is fully covered.
		{"PhotoObj", "ix_PhotoObj_htmID", []string{"htmID"},
			[]string{"objID", "cx", "cy", "cz", "ra", "dec", "type", "mode", "run", "camcol", "field", "rerun"}},
		// The survey-address covering index behind the NEO query
		// (Figure 12): everything Q15B touches is included.
		{"PhotoObj", "ix_PhotoObj_run_camcol_field", []string{"run", "camcol", "field"},
			[]string{"objID", "q_r", "u_r", "q_g", "u_g",
				"fiberMag_u", "fiberMag_g", "fiberMag_r", "fiberMag_i", "fiberMag_z",
				"parentID", "isoA_r", "isoB_r", "isoA_g", "isoB_g", "cx", "cy", "cz"}},
		// Type/mode/magnitude: the star–galaxy separation workhorse.
		{"PhotoObj", "ix_PhotoObj_type_mode_r", []string{"type", "mode", "r"},
			[]string{"objID", "u", "g", "i", "z", "ra", "dec", "flags"}},
		// Deblend family navigation.
		{"PhotoObj", "ix_PhotoObj_parentID", []string{"parentID"}, []string{"objID", "nChild"}},
		// Load-time undo scans.
		{"PhotoObj", "ix_PhotoObj_loadTime", []string{"loadTime"}, nil},
		{"Field", "ix_Field_run_camcol_field", []string{"run", "camcol", "field"}, []string{"fieldID"}},
		{"Frame", "ix_Frame_field_zoom", []string{"fieldID", "zoom"}, []string{"frameID"}},
		{"Neighbors", "ix_Neighbors_distance", []string{"objID", "distance"}, []string{"neighborObjID", "neighborType"}},
		// The reverse direction: joins that walk from the neighbor back
		// (the variable-star and lens-pair queries) probe this.
		{"Neighbors", "ix_Neighbors_neighbor", []string{"neighborObjID"}, []string{"objID", "distance", "neighborType", "neighborMode"}},
		{"SpecObj", "ix_SpecObj_objID", []string{"objID"}, []string{"specObjID", "z", "zConf", "specClass"}},
		{"SpecObj", "ix_SpecObj_plate", []string{"plateID", "fiberID"}, []string{"specObjID"}},
		{"SpecObj", "ix_SpecObj_z", []string{"specClass", "z"}, []string{"specObjID", "objID", "zConf"}},
		{"SpecLine", "ix_SpecLine_ew", []string{"specObjID", "ew"}, nil},
		{"xcRedShift", "ix_xcRedShift_r", []string{"specObjID", "r"}, nil},
		{"First", "ix_First_peakFlux", []string{"peakFlux"}, []string{"objID"}},
	}
	for _, x := range indexes {
		if _, err := db.CreateIndex(x.table, x.name, x.keys, x.incl); err != nil {
			return fmt.Errorf("schema: index %s: %w", x.name, err)
		}
	}
	return nil
}

// buildViews creates the subclassing views of §9.1.3.
func buildViews(db *sqlengine.DB) error {
	views := []struct{ name, base, where, desc string }{
		{"PhotoPrimary", "PhotoObj", "mode = 1", "Primary survey objects: the best instance of each deblended child (≈80% of PhotoObj)."},
		{"PhotoSecondary", "PhotoObj", "mode = 2", "Secondary (duplicate) observations from stripe/strip overlaps."},
		{"Star", "PhotoPrimary", "type = 6", "Primary objects classified as stars."},
		{"Galaxy", "PhotoPrimary", "type = 3", "Primary objects classified as galaxies."},
		{"Unknown", "PhotoPrimary", "type = 0", "Primary objects of unknown type."},
	}
	for _, v := range views {
		if err := db.CreateView(v.name, v.base, v.where, v.desc); err != nil {
			return err
		}
	}
	return nil
}

// buildForeignKeys declares the referential skeleton of Figure 7 ("a fairly
// complete set of foreign key declarations").
func buildForeignKeys(db *sqlengine.DB) error {
	fks := []struct {
		table, name string
		cols        []string
		ref         string
		refCols     []string
	}{
		{"Frame", "fk_Frame_Field", []string{"fieldID"}, "Field", []string{"fieldID"}},
		{"Profile", "fk_Profile_PhotoObj", []string{"objID"}, "PhotoObj", []string{"objID"}},
		{"Neighbors", "fk_Neighbors_PhotoObj", []string{"objID"}, "PhotoObj", []string{"objID"}},
		{"SpecObj", "fk_SpecObj_Plate", []string{"plateID"}, "Plate", []string{"plateID"}},
		{"SpecLine", "fk_SpecLine_SpecObj", []string{"specObjID"}, "SpecObj", []string{"specObjID"}},
		{"SpecLineIndex", "fk_SpecLineIndex_SpecObj", []string{"specObjID"}, "SpecObj", []string{"specObjID"}},
		{"xcRedShift", "fk_xcRedShift_SpecObj", []string{"specObjID"}, "SpecObj", []string{"specObjID"}},
		{"elRedShift", "fk_elRedShift_SpecObj", []string{"specObjID"}, "SpecObj", []string{"specObjID"}},
		{"First", "fk_First_PhotoObj", []string{"objID"}, "PhotoObj", []string{"objID"}},
		{"Rosat", "fk_Rosat_PhotoObj", []string{"objID"}, "PhotoObj", []string{"objID"}},
		{"USNO", "fk_USNO_PhotoObj", []string{"objID"}, "PhotoObj", []string{"objID"}},
	}
	for _, fk := range fks {
		if err := db.AddForeignKey(fk.table, fk.name, fk.cols, fk.ref, fk.refCols); err != nil {
			return err
		}
	}
	return nil
}

// PhotoFlagValue resolves a flag name (case-insensitive) to its bit value.
func PhotoFlagValue(name string) (int64, bool) {
	v, ok := photoFlagValues[upper(name)]
	return v, ok
}

// PhotoTypeValue resolves a type name to its code.
func PhotoTypeValue(name string) (int64, bool) {
	v, ok := photoTypeNames[upper(name)]
	return v, ok
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
