package schema

import (
	"strings"
	"testing"

	"skyserver/internal/htm"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

func build(t *testing.T) *SkyDB {
	t.Helper()
	sdb, err := Build(storage.NewMemFileGroup(2, 256))
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

func TestBuildCreatesTable1Tables(t *testing.T) {
	sdb := build(t)
	tables := sdb.Tables()
	if len(tables) != 11 {
		t.Fatalf("Tables() = %d, want the 11 of Table 1", len(tables))
	}
	wantOrder := []string{"Field", "Frame", "PhotoObj", "Profile", "Neighbors",
		"Plate", "SpecObj", "SpecLine", "SpecLineIndex", "xcRedShift", "elRedShift"}
	for i, tb := range tables {
		if tb.Name != wantOrder[i] {
			t.Errorf("table %d = %s, want %s", i, tb.Name, wantOrder[i])
		}
	}
}

func TestPhotoObjSchemaShape(t *testing.T) {
	sdb := build(t)
	n := len(sdb.PhotoObj.Cols)
	if n < 180 || n > 280 {
		t.Errorf("PhotoObj has %d columns; the paper's record has ~400 attributes, our target ≈220", n)
	}
	// The 60 magnitude attributes: 6 kinds × 5 bands of mags and errors.
	for _, kind := range MagKinds {
		for _, band := range Bands {
			if sdb.PhotoObj.ColIndex(kind+"Mag_"+band) < 0 {
				t.Errorf("missing %sMag_%s", kind, band)
			}
			if sdb.PhotoObj.ColIndex(kind+"MagErr_"+band) < 0 {
				t.Errorf("missing %sMagErr_%s", kind, band)
			}
		}
	}
	// The queried columns of §11.
	for _, col := range []string{"objID", "run", "camcol", "field", "ra", "dec",
		"cx", "cy", "cz", "htmID", "rowv", "colv", "q_r", "u_r", "q_g", "u_g",
		"fiberMag_r", "parentID", "isoA_r", "isoB_r", "u", "g", "r", "i", "z",
		"extinction_r", "petroR50_g", "loadTime"} {
		if sdb.PhotoObj.ColIndex(col) < 0 {
			t.Errorf("missing column %s", col)
		}
	}
	// Every column documented for the schema browser.
	for _, c := range sdb.PhotoObj.Cols {
		if c.Desc == "" {
			t.Errorf("column %s undocumented", c.Name)
		}
	}
}

func TestViewsAndIndexesExist(t *testing.T) {
	sdb := build(t)
	for _, v := range []string{"PhotoPrimary", "PhotoSecondary", "Star", "Galaxy", "Unknown"} {
		if _, ok := sdb.DB.View(v); !ok {
			t.Errorf("missing view %s", v)
		}
	}
	for _, ix := range []string{"ix_PhotoObj_htmID", "ix_PhotoObj_run_camcol_field", "ix_PhotoObj_type_mode_r"} {
		if sdb.PhotoObj.IndexByName(ix) == nil {
			t.Errorf("missing index %s", ix)
		}
	}
	if got := len(sdb.PhotoObj.Indexes()); got < 5 {
		t.Errorf("PhotoObj has %d indexes; the paper has 'tens'", got)
	}
}

func TestFlagAndTypeVocabularies(t *testing.T) {
	v, ok := PhotoFlagValue("SATURATED")
	if !ok || v == 0 {
		t.Error("SATURATED missing")
	}
	if v2, ok := PhotoFlagValue("saturated"); !ok || v2 != v {
		t.Error("flag lookup not case-insensitive")
	}
	if _, ok := PhotoFlagValue("NOT_A_FLAG"); ok {
		t.Error("bogus flag resolved")
	}
	if v, ok := PhotoTypeValue("GALAXY"); !ok || v != TypeGalaxy {
		t.Error("GALAXY type wrong")
	}
	if v, ok := PhotoTypeValue("star"); !ok || v != TypeStar {
		t.Error("star type wrong")
	}
	// Flags must be distinct bits.
	seen := map[int64]string{}
	for name := range photoFlagValues {
		v, _ := PhotoFlagValue(name)
		if prev, dup := seen[v]; dup {
			t.Errorf("flags %s and %s share bit %x", name, prev, v)
		}
		seen[v] = name
	}
}

func TestFunctionsRegistered(t *testing.T) {
	sdb := build(t)
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec("select dbo.fPhotoFlags('SATURATED'), dbo.fPhotoType('GALAXY')", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].I != TypeGalaxy {
		t.Errorf("fPhotoType = %v", res.Rows[0][1])
	}
	if _, err := sess.Exec("select dbo.fPhotoFlags('NOPE')", sqlengine.ExecOptions{}); err == nil {
		t.Error("unknown flag accepted")
	}
	res, err = sess.Exec("select dbo.fGetUrlExpId(42)", sqlengine.ExecOptions{})
	if err != nil || !strings.Contains(res.Rows[0][0].S, "id=42") {
		t.Errorf("fGetUrlExpId: %v %v", res.Rows, err)
	}
	res, err = sess.Exec("select dbo.fDistanceArcMinEq(185, 0, 185, 1)", sqlengine.ExecOptions{})
	if err != nil || res.Rows[0][0].F < 59.9 || res.Rows[0][0].F > 60.1 {
		t.Errorf("fDistanceArcMinEq: %v %v", res.Rows, err)
	}
}

func TestSpatialTVFsOnEmptyAndPlanted(t *testing.T) {
	sdb := build(t)
	sess := sqlengine.NewSession(sdb.DB)
	// Empty database: zero rows, no error.
	res, err := sess.Exec("select * from fGetNearbyObjEq(185, -0.5, 1)", sqlengine.ExecOptions{})
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("empty nearby: %v %v", res.Rows, err)
	}
	// Plant two objects, one inside 1', one outside.
	tab := sdb.PhotoObj
	mk := func(id int64, ra, dec float64) val.Row {
		row := make(val.Row, len(tab.Cols))
		for j, c := range tab.Cols {
			switch c.Kind {
			case val.KindInt:
				row[j] = val.Int(0)
			case val.KindFloat:
				row[j] = val.Float(0)
			case val.KindString:
				row[j] = val.Str("")
			default:
				row[j] = val.Null()
			}
		}
		row[tab.ColIndex("objID")] = val.Int(id)
		row[tab.ColIndex("ra")] = val.Float(ra)
		row[tab.ColIndex("dec")] = val.Float(dec)
		v := eqVec(ra, dec)
		row[tab.ColIndex("cx")] = val.Float(v[0])
		row[tab.ColIndex("cy")] = val.Float(v[1])
		row[tab.ColIndex("cz")] = val.Float(v[2])
		row[tab.ColIndex("htmID")] = val.Int(htmID(ra, dec))
		row[tab.ColIndex("mode")] = val.Int(1)
		row[tab.ColIndex("type")] = val.Int(3)
		return row
	}
	if _, err := tab.Insert(mk(1, 185.001, -0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(mk(2, 185.2, -0.5)); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Exec("select objID, distance from fGetNearbyObjEq(185, -0.5, 1)", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("nearby = %v, want just object 1", res.Rows)
	}
	res, err = sess.Exec("select objID from fGetNearestObjEq(185, -0.5, 60)", sqlengine.ExecOptions{})
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("nearest = %v %v", res.Rows, err)
	}
	res, err = sess.Exec("select HTMIDstart, HTMIDend from fHTMCoverCircleEq(185, -0.5, 1)", sqlengine.ExecOptions{})
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("cover: %v %v", res.Rows, err)
	}
	for _, row := range res.Rows {
		if row[0].I >= row[1].I {
			t.Errorf("cover range [%d,%d) empty", row[0].I, row[1].I)
		}
	}
	// Error paths.
	if _, err := sess.Exec("select * from fGetNearbyObjEq(185, -0.5, -1)", sqlengine.ExecOptions{}); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestForeignKeysDeclared(t *testing.T) {
	sdb := build(t)
	if len(sdb.SpecLine.ForeignKeys()) == 0 {
		t.Error("SpecLine has no FKs")
	}
	fk := sdb.SpecLine.ForeignKeys()[0]
	if fk.RefTable != "SpecObj" {
		t.Errorf("SpecLine FK references %s", fk.RefTable)
	}
}

func eqVec(ra, dec float64) [3]float64 {
	v := sky.EqToVec(ra, dec)
	return [3]float64{v.X, v.Y, v.Z}
}

func htmID(ra, dec float64) int64 {
	return int64(htm.LookupEq(ra, dec, HTMDepth))
}
