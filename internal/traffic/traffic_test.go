package traffic

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// smallConfig keeps generation fast for unit tests while preserving the
// structural features (outages, spike, crawlers, languages).
func smallConfig() Config {
	return Config{Seed: 7, BaseSessions: 12, Days: Days}
}

func generateReport(t *testing.T) *Report {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Generate(smallConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Generate(smallConfig(), &a); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(smallConfig(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different logs")
	}
}

func TestParseLineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := Entry{
		Time: time.Date(2001, 10, 2, 15, 4, 5, 0, time.UTC), Client: "c000123",
		Path: "/en/tools/places/", IsPage: true, Crawler: true, Lang: "en",
	}
	if _, err := writeEntry(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLine(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(e.Time) || got.Client != e.Client || got.Path != e.Path ||
		got.IsPage != e.IsPage || got.Crawler != e.Crawler || got.Lang != e.Lang {
		t.Errorf("round trip: %+v != %+v", got, e)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, bad := range []string{"", "only three fields here", "notatime c1 P en /x"} {
		if _, err := ParseLine(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFigure5SeriesShape(t *testing.T) {
	rep := generateReport(t)
	if len(rep.Daily) < Days*9/10 {
		t.Fatalf("only %d days in series", len(rep.Daily))
	}
	// Hits ≫ pages ≫ sessions, roughly the paper's 2.5M : 1M : 70k shape
	// (hits/pages ≈ 2.5, pages/sessions ≈ 14).
	hp := float64(rep.Hits) / float64(rep.Pages)
	ps := float64(rep.Pages) / float64(rep.Sessions)
	if hp < 1.5 || hp > 5 {
		t.Errorf("hits/pages = %.1f, want ≈2.5", hp)
	}
	if ps < 4 || ps > 40 {
		t.Errorf("pages/sessions = %.1f, want ≈14", ps)
	}
}

func TestOutagesVisible(t *testing.T) {
	rep := generateReport(t)
	byDate := map[string]DayStats{}
	for _, d := range rep.Daily {
		byDate[d.Day.Format("2006-01-02")] = d
	}
	for _, od := range OutageDays {
		day := LaunchDay.AddDate(0, 0, od).Format("2006-01-02")
		before := LaunchDay.AddDate(0, 0, od-3).Format("2006-01-02")
		if byDate[day].Sessions*3 > byDate[before].Sessions {
			t.Errorf("outage day %s (%d sessions) not clearly below %s (%d sessions)",
				day, byDate[day].Sessions, before, byDate[before].Sessions)
		}
	}
}

func TestTVSpikeVisible(t *testing.T) {
	rep := generateReport(t)
	byDate := map[string]DayStats{}
	for _, d := range rep.Daily {
		byDate[d.Day.Format("2006-01-02")] = d
	}
	spike := LaunchDay.AddDate(0, 0, TVSpikeDay).Format("2006-01-02")
	week := LaunchDay.AddDate(0, 0, TVSpikeDay-7).Format("2006-01-02")
	if byDate[spike].Sessions < byDate[week].Sessions*8 {
		t.Errorf("TV day %s sessions %d not ≥8x baseline %d",
			spike, byDate[spike].Sessions, byDate[week].Sessions)
	}
}

func TestShares(t *testing.T) {
	rep := generateReport(t)
	crawler := float64(rep.CrawlerHits) / float64(rep.Hits)
	if crawler < 0.15 || crawler > 0.45 {
		t.Errorf("crawler share = %.2f, paper says ≈0.30", crawler)
	}
	jp := float64(rep.LangPages["jp"]) / float64(rep.Pages)
	de := float64(rep.LangPages["de"]) / float64(rep.Pages)
	if jp < 0.02 || jp > 0.07 {
		t.Errorf("jp share = %.3f, paper says ≈0.04", jp)
	}
	if de < 0.01 || de > 0.06 {
		t.Errorf("de share = %.3f, paper says ≈0.03", de)
	}
	edu := float64(rep.EduPages) / float64(rep.Pages)
	if edu < 0.03 || edu > 0.20 {
		t.Errorf("education share = %.3f, paper says ≈0.08", edu)
	}
}

func TestSessionizerGap(t *testing.T) {
	// Two bursts from one client, 44 minutes apart: two sessions.
	var buf bytes.Buffer
	t0 := time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC)
	for _, dt := range []time.Duration{0, time.Minute, 45 * time.Minute, 46 * time.Minute} {
		_, _ = writeEntry(&buf, Entry{Time: t0.Add(dt), Client: "c1", Path: "/en/", IsPage: true, Lang: "en"})
	}
	rep, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2 {
		t.Errorf("sessions = %d, want 2", rep.Sessions)
	}
	if rep.Hits != 4 || rep.Pages != 4 {
		t.Errorf("hits/pages = %d/%d", rep.Hits, rep.Pages)
	}
}

func TestMonthlySeries(t *testing.T) {
	rep := generateReport(t)
	months := rep.MonthlySeries()
	if len(months) < 7 || len(months) > 8 {
		t.Fatalf("%d months, want 7 (June..December)", len(months))
	}
	var hits, pages, sessions int
	for _, m := range months {
		hits += m.Hits
		pages += m.Pages
		sessions += m.Sessions
	}
	if hits != rep.Hits || pages != rep.Pages || sessions != rep.Sessions {
		t.Error("monthly series does not sum to totals")
	}
	if !strings.HasPrefix(months[0].Day.Format("2006-01-02"), "2001-06") {
		t.Errorf("first month = %v", months[0].Day)
	}
}

func TestUptimeWindowMatchesPaper(t *testing.T) {
	// Not a log property, but pin the constants the report prints.
	if Days != 214 {
		t.Errorf("window = %d days", Days)
	}
	if LaunchDay.Month() != time.June || LaunchDay.Year() != 2001 {
		t.Errorf("launch = %v", LaunchDay)
	}
}
