// Package traffic reproduces the SkyServer's web-traffic study (§7,
// Figure 5): daily hits, page views and sessions over the site's first
// seven months, including the two Fermilab network outages (22 June and
// 26 July 2001), the 20× television spike (2 October 2001), ~30% crawler
// traffic, and the Japanese (~4%) and German (~3%) sub-webs.
//
// The package has two halves, matching what a real deployment would run:
// a synthetic access-log generator standing in for the IIS logs we do not
// have, and an analyzer (sessionizer + daily aggregator) that computes the
// Figure 5 series from any log, synthetic or live (the web server's access
// log feeds it too).
package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Site launch and observation window (§7: "operating since June 2001 …
// In 7 months it served about 2.5 million hits").
var (
	LaunchDay = time.Date(2001, time.June, 5, 0, 0, 0, 0, time.UTC)
	// Days is the length of the reported window (June..December 2001).
	Days = 214
)

// Notable days in the series (§7 and Figure 5).
var (
	OutageDays = []int{17, 51} // 22 June and 26 July 2001, relative to launch
	TVSpikeDay = 119           // 2 October 2001
)

// Entry is one access-log record.
type Entry struct {
	Time    time.Time
	Client  string // synthetic client id (stands in for IP+agent)
	Path    string
	IsPage  bool // page view vs. embedded asset hit
	Crawler bool
	Lang    string // "en", "jp", "de"
}

// Config tunes the generator.
type Config struct {
	Seed int64
	// BaseSessions is the launch-week daily session count; traffic grows
	// toward the paper's sustained ~500 people/day. Default 150.
	BaseSessions int
	// Days overrides the window length (default the paper's 214).
	Days int
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 20011002
	}
	if c.BaseSessions == 0 {
		c.BaseSessions = 110
	}
	if c.Days == 0 {
		c.Days = Days
	}
}

// pagePool is the site map the generator draws from; weights are rough
// popularity (the "famous places" gallery is the most popular page, §2).
var pagePool = []struct {
	path   string
	weight int
	assets int // embedded images etc. fetched alongside
}{
	{"/en/tools/places/", 24, 3},
	{"/en/", 18, 2},
	{"/en/tools/navi/", 14, 4},
	{"/en/tools/explore/obj.asp", 12, 2},
	{"/en/tools/search/sql.asp", 8, 1},
	{"/en/proj/kids/oldtime/", 5, 2},
	{"/en/proj/advanced/hubble/", 4, 2},
	{"/en/help/docs/browser.asp", 4, 1},
	{"/en/sdss/", 3, 1},
	{"/en/download/", 2, 0},
}

// Generate writes a synthetic access log to w, one entry per line, in
// chronological order, and returns the entry count.
func Generate(cfg Config, w io.Writer) (int, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 1<<20)
	total := 0
	clientSeq := 0
	for day := 0; day < cfg.Days; day++ {
		date := LaunchDay.AddDate(0, 0, day)
		sessions := dailySessions(cfg, rng, day)
		for s := 0; s < sessions; s++ {
			clientSeq++
			client := fmt.Sprintf("c%06d", clientSeq)
			crawler := rng.Float64() < 0.13 // crawlers browse long: ~25-30% of hits
			lang := "en"
			switch r := rng.Float64(); {
			case r < 0.04:
				lang = "jp"
			case r < 0.07:
				lang = "de"
			}
			// Session start: diurnal double hump (US daytime + Europe).
			hour := diurnalHour(rng)
			start := date.Add(time.Duration(hour*3600) * time.Second)
			pages := 3 + rng.Intn(15)
			if crawler {
				pages = 35 + rng.Intn(40)
			}
			cur := start
			for p := 0; p < pages; p++ {
				pg := pagePool[weightedPick(rng)]
				path := pg.path
				if lang != "en" {
					path = "/" + lang + strings.TrimPrefix(path, "/en")
				}
				n, err := writeEntry(bw, Entry{
					Time: cur, Client: client, Path: path,
					IsPage: true, Crawler: crawler, Lang: lang,
				})
				if err != nil {
					return total, err
				}
				total += n
				// Asset hits accompany the page view.
				assets := pg.assets
				if crawler {
					assets = assets / 3 // crawlers skip most images
				}
				for a := 0; a < assets; a++ {
					n, err := writeEntry(bw, Entry{
						Time: cur.Add(time.Second), Client: client,
						Path:   path + fmt.Sprintf("img%d.jpg", a),
						IsPage: false, Crawler: crawler, Lang: lang,
					})
					if err != nil {
						return total, err
					}
					total += n
				}
				cur = cur.Add(time.Duration(20+rng.Intn(240)) * time.Second)
			}
		}
		// ~5 "hacker attacks" per day (§7): probes that are hits, not pages.
		for a := 0; a < 4+rng.Intn(3); a++ {
			n, err := writeEntry(bw, Entry{
				Time:   date.Add(time.Duration(rng.Intn(86400)) * time.Second),
				Client: fmt.Sprintf("x%04d", rng.Intn(1000)),
				Path:   "/scripts/..%c1%1c../winnt/system32/cmd.exe",
				IsPage: false, Crawler: false, Lang: "en",
			})
			if err != nil {
				return total, err
			}
			total += n
		}
	}
	return total, bw.Flush()
}

// dailySessions models the Figure 5 envelope: growth from launch toward the
// sustained level, weekly cycle, two outages, and the TV spike.
func dailySessions(cfg Config, rng *rand.Rand, day int) int {
	base := float64(cfg.BaseSessions)
	// Ramp up over the first two months toward ~3x launch traffic.
	level := base * (1 + 2*(1-math.Exp(-float64(day)/45)))
	// Weekly cycle: weekend dips (classes drive weekday use, §7).
	dow := int(LaunchDay.AddDate(0, 0, day).Weekday())
	if dow == 0 || dow == 6 {
		level *= 0.6
	}
	// Network outages: traffic collapses for the day.
	for _, od := range OutageDays {
		if day == od {
			level *= 0.04
		}
	}
	// The TV show: a 20x peak decaying over three days.
	switch day {
	case TVSpikeDay:
		level *= 20
	case TVSpikeDay + 1:
		level *= 6
	case TVSpikeDay + 2:
		level *= 2
	}
	// Demo days at conferences: occasional 2x bumps.
	if day%29 == 11 {
		level *= 2
	}
	n := int(level * (0.85 + 0.3*rng.Float64()))
	if n < 1 {
		n = 1
	}
	return n
}

// diurnalHour draws an hour-of-day from a two-hump distribution.
func diurnalHour(rng *rand.Rand) float64 {
	if rng.Float64() < 0.7 {
		return math.Mod(15+4*rng.NormFloat64()+24, 24) // US afternoon
	}
	return math.Mod(9+3*rng.NormFloat64()+24, 24) // European morning
}

func weightedPick(rng *rand.Rand) int {
	total := 0
	for _, p := range pagePool {
		total += p.weight
	}
	r := rng.Intn(total)
	for i, p := range pagePool {
		r -= p.weight
		if r < 0 {
			return i
		}
	}
	return len(pagePool) - 1
}

// Log line format: RFC3339 time, client, flags (P=page, C=crawler), lang,
// path — a simplified combined-log format.
func writeEntry(w io.Writer, e Entry) (int, error) {
	flags := "-"
	if e.IsPage {
		flags = "P"
	}
	if e.Crawler {
		flags += "C"
	}
	if _, err := fmt.Fprintf(w, "%s %s %s %s %s\n",
		e.Time.Format(time.RFC3339), e.Client, flags, e.Lang, e.Path); err != nil {
		return 0, err
	}
	return 1, nil
}

// ParseLine parses one log line.
func ParseLine(line string) (Entry, error) {
	parts := strings.SplitN(strings.TrimSpace(line), " ", 5)
	if len(parts) != 5 {
		return Entry{}, fmt.Errorf("traffic: malformed log line %q", line)
	}
	ts, err := time.Parse(time.RFC3339, parts[0])
	if err != nil {
		return Entry{}, fmt.Errorf("traffic: bad timestamp: %w", err)
	}
	return Entry{
		Time:    ts,
		Client:  parts[1],
		IsPage:  strings.Contains(parts[2], "P"),
		Crawler: strings.Contains(parts[2], "C"),
		Lang:    parts[3],
		Path:    parts[4],
	}, nil
}

// DayStats is one day of the Figure 5 series.
type DayStats struct {
	Day      time.Time
	Hits     int
	Pages    int
	Sessions int
}

// Report is the analyzer's output.
type Report struct {
	Daily []DayStats
	// Totals over the window.
	Hits, Pages, Sessions int
	CrawlerHits           int
	LangPages             map[string]int
	EduPages              int // educational project pages (§6: ~8%)
}

// SessionGap is the idle gap that ends a session (the standard 30 minutes).
const SessionGap = 30 * time.Minute

// Analyze reads a log (already in roughly chronological order) and builds
// the daily hits/pages/sessions series plus the share breakdowns §7 quotes.
func Analyze(r io.Reader) (*Report, error) {
	rep := &Report{LangPages: map[string]int{}}
	days := map[string]*DayStats{}
	lastSeen := map[string]time.Time{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		e, err := ParseLine(line)
		if err != nil {
			return nil, err
		}
		key := e.Time.Format("2006-01-02")
		d, ok := days[key]
		if !ok {
			day, _ := time.Parse("2006-01-02", key)
			d = &DayStats{Day: day}
			days[key] = d
		}
		d.Hits++
		rep.Hits++
		if e.Crawler {
			rep.CrawlerHits++
		}
		if e.IsPage {
			d.Pages++
			rep.Pages++
			rep.LangPages[e.Lang]++
			if strings.Contains(e.Path, "/proj/") {
				rep.EduPages++
			}
		}
		if last, ok := lastSeen[e.Client]; !ok || e.Time.Sub(last) > SessionGap || e.Time.Before(last) {
			d.Sessions++
			rep.Sessions++
		}
		lastSeen[e.Client] = e.Time
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(days))
	for k := range days {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Daily = append(rep.Daily, *days[k])
	}
	return rep, nil
}

// MonthlySeries condenses the daily series to per-month sums, the
// granularity of Figure 5's log-scale plot.
func (r *Report) MonthlySeries() []DayStats {
	var out []DayStats
	var cur *DayStats
	curKey := ""
	for _, d := range r.Daily {
		key := d.Day.Format("2006-01")
		if key != curKey {
			out = append(out, DayStats{Day: time.Date(d.Day.Year(), d.Day.Month(), 1, 0, 0, 0, 0, time.UTC)})
			cur = &out[len(out)-1]
			curKey = key
		}
		cur.Hits += d.Hits
		cur.Pages += d.Pages
		cur.Sessions += d.Sessions
	}
	return out
}
