package val

// BatchSize is the row capacity of execution batches: large enough to
// amortize per-batch dispatch over the interpreter, small enough that the
// handful of materialized columns of a typical query stay cache-resident.
const BatchSize = 1024

// Batch is a fixed-capacity columnar chunk of rows: one []Value per column
// plus an optional selection vector. It is the unit of data flow in the
// vectorized executor — operators emit whole batches instead of single
// rows, so per-row interpreter overhead (closure dispatch, bounds checks,
// callback frames) is paid once per BatchSize rows.
//
// Columns are materialized lazily: a nil column slice means the column was
// pruned (the planner proved no expression reads it) and its values are
// undefined — RowAt reports NULL for pruned columns, and writes through
// Put allocate on demand. Pruning is what keeps a scan of the ~220-column
// PhotoObj that touches three columns from dragging 10 MB of column arrays
// through the cache per batch. Materialized columns have a fixed length of
// BatchSize (or whatever SetColumn installed), with Size() counting the
// valid physical rows.
//
// A batch distinguishes physical rows (indexed 0..Size()-1) from active
// rows (the subset a filter kept). The selection vector holds the physical
// indices of the active rows in ascending order; a nil selection means all
// physical rows are active. Filters narrow the selection in place rather
// than copying survivors, so a selective predicate costs one pass over the
// columns it touches and nothing per dropped row.
//
// Batches are reused aggressively: producers Reset and refill the same
// batch, and pooled batches (pool.go) recycle their column arrays across
// queries, so consumers must not retain a batch or its column slices past
// the emit callback that delivered it. Individual Values are safe to keep:
// producers allocate fresh blob backing bytes on decode and never mutate
// them, only the batch structure is recycled.
type Batch struct {
	cols [][]Value
	n    int   // physical rows
	sel  []int // active physical indices, ascending; nil = all n
	selB []int // owned backing for sel, reused across filters

	// capRows is the row capacity (BatchSize, or SmallBatchSize for the
	// pool's small class). pooled/released implement the explicit
	// Release lifecycle of pool.go.
	capRows  int
	pooled   bool
	released bool
}

// NewBatch returns an empty batch with every one of width columns
// materialized at capacity BatchSize. Use for dense producers (projection
// output, sorted output, temp-table scans) whose every column is written.
func NewBatch(width int) *Batch {
	b := &Batch{cols: make([][]Value, width), capRows: BatchSize}
	for i := range b.cols {
		b.cols[i] = make([]Value, BatchSize)
	}
	return b
}

// NewBatchNeeded returns an empty batch of the given width materializing
// only the columns marked in need (nil = all). Unmarked columns stay
// pruned unless written through Put.
func NewBatchNeeded(width int, need []bool) *Batch {
	if need == nil {
		return NewBatch(width)
	}
	b := &Batch{cols: make([][]Value, width), capRows: BatchSize}
	for i := range b.cols {
		if need[i] {
			b.cols[i] = make([]Value, BatchSize)
		}
	}
	return b
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.cols) }

// Size returns the number of physical rows.
func (b *Batch) Size() int { return b.n }

// Len returns the number of active (selected) rows.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Cap returns the batch's row capacity (BatchSize unless the batch came
// from the pool's small class).
func (b *Batch) Cap() int { return b.capRows }

// Full reports whether the batch has reached its row capacity.
func (b *Batch) Full() bool { return b.n >= b.capRows }

// HasCol reports whether column i is materialized.
func (b *Batch) HasCol(i int) bool { return b.cols[i] != nil }

// Col returns column i's physical values (length Size). Positions not in
// the selection hold stale values and must be ignored. The column must be
// materialized.
func (b *Batch) Col(i int) []Value { return b.cols[i][:b.n] }

// Sel returns the selection vector: the ascending physical indices of the
// active rows, or nil when every physical row is active.
func (b *Batch) Sel() []int { return b.sel }

// SetSel replaces the selection vector. Indices must be ascending physical
// row numbers. Passing nil re-activates all physical rows.
func (b *Batch) SetSel(sel []int) { b.sel = sel }

// SelScratch returns the batch's owned selection buffer, emptied, with
// capacity for Size indices. Filters fill it with survivors and pass it to
// SetSel, so narrowing the selection never allocates after the first use.
// Appending survivors to the scratch while iterating the current selection
// is safe even though both may share backing storage: survivors are a
// subsequence of the rows being read, so the write index never overtakes
// the read index.
func (b *Batch) SelScratch() []int {
	if cap(b.selB) < b.n {
		n := b.n
		if n < BatchSize {
			n = BatchSize
		}
		b.selB = make([]int, 0, n)
	}
	return b.selB[:0]
}

// Reset empties the batch for refilling, keeping materialized columns.
func (b *Batch) Reset() {
	b.n = 0
	b.sel = nil
}

// Grow claims the next physical row and returns its index. Values in the
// new row are stale until written; callers must fill every column an
// expression may read (decode, scatter, or Put) before emitting.
func (b *Batch) Grow() int {
	b.n++
	return b.n - 1
}

// Put writes v into physical row idx of column c, materializing the column
// (from the pool, for pooled batches) on first write.
func (b *Batch) Put(c, idx int, v Value) {
	col := b.cols[c]
	if col == nil {
		if b.pooled {
			col = getCol(b.capRows)
		} else {
			col = make([]Value, b.capRows)
		}
		b.cols[c] = col
	}
	col[idx] = v
}

// AppendRow copies row (one value per column) into a new physical row.
// Every column must be materialized (NewBatch). Values are copied
// shallowly: blob bytes still alias the caller's slice.
func (b *Batch) AppendRow(row Row) {
	idx := b.Grow()
	for c := range b.cols {
		b.cols[c][idx] = row[c]
	}
}

// RowAt assembles physical row i into dst (which must have length ≥ Width)
// and returns dst[:Width]. Pruned columns read as NULL.
func (b *Batch) RowAt(i int, dst Row) Row {
	dst = dst[:len(b.cols)]
	for c, col := range b.cols {
		if col == nil {
			dst[c] = Value{}
			continue
		}
		dst[c] = col[i]
	}
	return dst
}

// Truncate keeps only the first k active rows (k ≤ Len).
func (b *Batch) Truncate(k int) {
	if b.sel != nil {
		b.sel = b.sel[:k]
		return
	}
	b.n = k
}

// SetColumn replaces column i's storage with vals. Used by operators that
// compute output columns densely (projection, aggregation); every column
// must be given at least SetSize's length.
func (b *Batch) SetColumn(i int, vals []Value) { b.cols[i] = vals }

// ColBuf returns column i's backing slice truncated to length zero, for
// rebuilding via append + SetColumn without reallocating.
func (b *Batch) ColBuf(i int) []Value { return b.cols[i][:0] }

// SetSize declares the physical row count after columns were rebuilt with
// SetColumn, and clears the selection (rebuilt batches are dense).
func (b *Batch) SetSize(n int) {
	b.n = n
	b.sel = nil
}

// Clone deep-copies the batch — materialized columns, selection, and blob
// bytes — so the copy survives producer reuse of the original. The clone
// is never pooled.
func (b *Batch) Clone() *Batch {
	out := &Batch{cols: make([][]Value, len(b.cols)), n: b.n, capRows: b.capRows}
	for i, col := range b.cols {
		if col == nil {
			continue
		}
		c := make([]Value, len(col))
		copy(c, col)
		for j, v := range c {
			if v.K == KindBytes && v.B != nil {
				bb := make([]byte, len(v.B))
				copy(bb, v.B)
				c[j].B = bb
			}
		}
		out.cols[i] = c
	}
	if b.sel != nil {
		out.sel = make([]int, len(b.sel))
		copy(out.sel, b.sel)
	}
	return out
}

// Project returns a view batch over the first width columns, sharing column
// storage and selection with b. The view is only valid as long as b is,
// and is never released (release the underlying batch instead).
func (b *Batch) Project(width int) *Batch {
	return &Batch{cols: b.cols[:width], n: b.n, sel: b.sel, capRows: b.capRows}
}

// Each calls fn for every active physical row index, in ascending order.
func (b *Batch) Each(fn func(i int)) {
	if b.sel != nil {
		for _, i := range b.sel {
			fn(i)
		}
		return
	}
	for i := 0; i < b.n; i++ {
		fn(i)
	}
}

// EachErr is Each for callbacks that can fail: iteration stops at the
// first error, which is returned.
func (b *Batch) EachErr(fn func(i int) error) error {
	if b.sel != nil {
		for _, i := range b.sel {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// DecodeInto decodes width fields from buf into physical row idx, writing
// column j's value into column colOff+j. Only columns marked in need
// (nil = all) are materialized; others are skipped without decoding. Blob
// payloads are deep-copied so batch rows never alias a scan's transient
// page buffer (string payloads are already copies). It returns the bytes
// consumed.
func (b *Batch) DecodeInto(idx, colOff int, buf []byte, width int, need []bool) (int, error) {
	off := 0
	for i := 0; i < width; i++ {
		if need != nil && !need[i] {
			n, err := skipValue(buf[off:])
			if err != nil {
				return 0, err
			}
			off += n
			continue
		}
		v, n, err := DecodeValue(buf[off:])
		if err != nil {
			return 0, err
		}
		if v.K == KindBytes && v.B != nil {
			bb := make([]byte, len(v.B))
			copy(bb, v.B)
			v.B = bb
		}
		b.Put(colOff+i, idx, v)
		off += n
	}
	return off, nil
}
