package val

import "testing"

// TestPoolReleaseResets proves a released batch's successor starts empty:
// length zero, no selection, capacity and width as requested — whatever
// state the previous user left behind.
func TestPoolReleaseResets(t *testing.T) {
	b := GetBatch(3, BatchSize, nil)
	for i := 0; i < 10; i++ {
		idx := b.Grow()
		b.Put(0, idx, Int(int64(i)))
		b.Put(1, idx, Float(float64(i)))
		b.Put(2, idx, Str("x"))
	}
	b.SetSel([]int{1, 3, 5})
	b.Release()

	s := GetBatch(3, BatchSize, nil)
	if s.Size() != 0 {
		t.Fatalf("successor Size = %d, want 0", s.Size())
	}
	if s.Sel() != nil {
		t.Fatalf("successor Sel = %v, want nil", s.Sel())
	}
	if s.Len() != 0 {
		t.Fatalf("successor Len = %d, want 0", s.Len())
	}
	if s.Width() != 3 || s.Cap() != BatchSize {
		t.Fatalf("successor Width/Cap = %d/%d, want 3/%d", s.Width(), s.Cap(), BatchSize)
	}
	for c := 0; c < 3; c++ {
		if !s.HasCol(c) {
			t.Fatalf("successor column %d not materialized", c)
		}
	}
	s.Release()
}

// TestPoolNoAliasing proves that values copied out of a batch before its
// Release stay intact after a successor acquires and overwrites the
// recycled arrays: recycling reuses column arrays, never the Value structs
// a consumer copied or their blob backing bytes.
func TestPoolNoAliasing(t *testing.T) {
	b := GetBatch(2, BatchSize, nil)
	idx := b.Grow()
	blob := []byte{0xde, 0xad, 0xbe, 0xef}
	b.Put(0, idx, Int(42))
	b.Put(1, idx, Bytes(blob))
	// Copy out, as a consumer that retains values must.
	kept := make(Row, 2)
	b.RowAt(idx, kept)
	b.Release()

	s := GetBatch(2, BatchSize, nil)
	for i := 0; i < BatchSize; i++ {
		j := s.Grow()
		s.Put(0, j, Int(-1))
		s.Put(1, j, Bytes([]byte{9, 9, 9, 9}))
	}
	if kept[0].I != 42 {
		t.Fatalf("copied int corrupted by successor writes: %v", kept[0])
	}
	if string(kept[1].B) != string([]byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("copied blob corrupted by successor writes: %x", kept[1].B)
	}
	s.Release()
}

// TestPoolDoubleReleasePanics pins the double-release semantic: it panics,
// deterministically, because two live handles to one column array would be
// silent corruption.
func TestPoolDoubleReleasePanics(t *testing.T) {
	b := GetBatch(1, BatchSize, nil)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

// TestUnpooledReleaseNoop proves Release is safe on batches that did not
// come from the pool (the DisablePooling path releases unconditionally).
func TestUnpooledReleaseNoop(t *testing.T) {
	b := NewBatch(2)
	b.Release()
	b.Release() // and twice
	if b.Width() != 2 {
		t.Fatal("unpooled batch damaged by Release")
	}
}

// TestPoolSmallClassAndNeedMask checks the small column class and the
// need-mask plumbing: a small-capacity request materializes short arrays
// for exactly the needed columns, and Full trips at the small capacity.
func TestPoolSmallClassAndNeedMask(t *testing.T) {
	need := []bool{true, false, true}
	b := GetBatch(3, 1, need)
	if b.Cap() != SmallBatchSize {
		t.Fatalf("Cap = %d, want %d", b.Cap(), SmallBatchSize)
	}
	if !b.HasCol(0) || b.HasCol(1) || !b.HasCol(2) {
		t.Fatalf("need mask not honored: %v %v %v", b.HasCol(0), b.HasCol(1), b.HasCol(2))
	}
	for i := 0; i < SmallBatchSize; i++ {
		idx := b.Grow()
		b.Put(0, idx, Int(int64(i)))
		b.Put(2, idx, Int(int64(-i)))
	}
	if !b.Full() {
		t.Fatalf("small batch not Full at %d rows", SmallBatchSize)
	}
	// Put on a pruned column materializes from the pool at the small size.
	b.Put(1, 0, Str("late"))
	if !b.HasCol(1) {
		t.Fatal("Put did not materialize pruned column")
	}
	b.Release()

	// A later full-size request over the same shell upgrades the arrays.
	f := GetBatch(3, BatchSize, nil)
	if f.Cap() != BatchSize {
		t.Fatalf("Cap = %d, want %d", f.Cap(), BatchSize)
	}
	for i := 0; i < BatchSize; i++ {
		idx := f.Grow()
		f.Put(0, idx, Int(int64(i)))
	}
	if f.Col(0)[BatchSize-1].I != BatchSize-1 {
		t.Fatal("full-size column truncated")
	}
	f.Release()
}

// TestBatchWidthReuse checks widths can shrink and grow across reuse
// without leaking stale columns into the pruned positions of a masked
// successor.
func TestBatchWidthReuse(t *testing.T) {
	b := GetBatch(5, BatchSize, nil)
	b.Put(3, b.Grow(), Int(7))
	b.Release()
	need := []bool{true, false}
	n := GetBatch(2, BatchSize, need)
	if !n.HasCol(0) || n.HasCol(1) {
		t.Fatalf("need mask not honored after width shrink: %v %v", n.HasCol(0), n.HasCol(1))
	}
	n.Release()
	w := GetBatch(7, BatchSize, nil)
	for c := 0; c < 7; c++ {
		if !w.HasCol(c) {
			t.Fatalf("column %d missing after width grow", c)
		}
	}
	w.Release()
}

// TestArena checks bump allocation, Reset recycling, the oversize escape
// hatch, and the no-reuse debug mode.
func TestArena(t *testing.T) {
	a := GetArena()
	v1 := a.Vals(100)
	v2 := a.Vals(BatchSize)
	if len(v1) != 100 || len(v2) != BatchSize {
		t.Fatalf("Vals lengths: %d, %d", len(v1), len(v2))
	}
	v1[0] = Int(1)
	if v2[0].K == KindInt && v2[0].I == 1 {
		t.Fatal("sibling vectors alias")
	}
	a.Reset()
	r1 := a.Vals(50)
	if &r1[0] != &v1[0] {
		t.Fatal("Reset did not recycle the first chunk")
	}
	big := a.Vals(BatchSize + 1)
	if len(big) != BatchSize+1 {
		t.Fatalf("oversize Vals length %d", len(big))
	}
	is := a.Ints()
	if len(is) != 0 || cap(is) < BatchSize {
		t.Fatalf("Ints len/cap = %d/%d", len(is), cap(is))
	}
	a.Release()

	n := NewNoReuseArena()
	f1 := n.Vals(10)
	n.Reset()
	f2 := n.Vals(10)
	if &f1[0] == &f2[0] {
		t.Fatal("no-reuse arena recycled a vector")
	}
	n.Release() // no-op
}

// TestEmitter checks row streaming: batches forward when full, Close
// flushes the remainder and releases.
func TestEmitter(t *testing.T) {
	var sizes []int
	var total int
	em := NewEmitter(2, BatchSize, true, func(b *Batch) error {
		sizes = append(sizes, b.Size())
		b.Each(func(i int) {
			if b.Col(0)[i].I != int64(total) {
				t.Fatalf("row %d out of order: %v", total, b.Col(0)[i])
			}
			total++
		})
		return nil
	})
	for i := 0; i < BatchSize+3; i++ {
		if err := em.Append(Row{Int(int64(i)), Str("r")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	if total != BatchSize+3 {
		t.Fatalf("emitted %d rows, want %d", total, BatchSize+3)
	}
	if len(sizes) != 2 || sizes[0] != BatchSize || sizes[1] != 3 {
		t.Fatalf("batch sizes %v", sizes)
	}
}
