package val

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("galaxy"), KindString},
		{Bytes([]byte{1, 2}), KindBytes},
		{Bool(true), KindInt},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.K, c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool encoding wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "bigint" || KindFloat.String() != "float" {
		t.Error("kind names changed")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Error("Int.AsFloat")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float.AsFloat")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("Str.AsFloat should fail")
	}
	if i, ok := Float(2.9).AsInt(); !ok || i != 2 {
		t.Error("Float.AsInt should truncate")
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("Null.AsInt should fail")
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{Int(1), Float(0.1), Int(-3)} {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range []Value{Int(0), Float(0), Null(), Str("x")} {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{
		Null(),
		Float(math.Inf(-1)),
		Int(-5),
		Float(-1.5),
		Int(0),
		Float(0.5),
		Int(1),
		Float(1e18),
		Str("a"),
		Str("b"),
		Bytes([]byte{0}),
		Bytes([]byte{0, 1}),
		Bytes([]byte{1}),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareIntFloatCross(t *testing.T) {
	if Int(2).Compare(Float(2.0)) != 0 {
		t.Error("2 != 2.0")
	}
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("2 >= 2.5")
	}
	if Float(3.5).Compare(Int(3)) != 1 {
		t.Error("3.5 <= 3")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Compare(nan) != 0 {
		t.Error("NaN should equal itself in total order")
	}
	if nan.Compare(Float(0)) != -1 || Float(0).Compare(nan) != 1 {
		t.Error("NaN should sort below numbers")
	}
}

func TestRowCompare(t *testing.T) {
	a := Row{Int(1), Str("x")}
	b := Row{Int(1), Str("y")}
	c := Row{Int(1)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("row ordering wrong")
	}
	if c.Compare(a) != -1 || a.Compare(c) != 1 {
		t.Error("prefix rows should sort first")
	}
}

func TestRowClone(t *testing.T) {
	blob := []byte{1, 2, 3}
	r := Row{Int(1), Bytes(blob)}
	c := r.Clone()
	blob[0] = 99
	if c[1].B[0] != 1 {
		t.Error("Clone did not deep-copy blob")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null()},
		{Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(-1.5), Float(math.MaxFloat64), Float(math.Inf(1))},
		{Str(""), Str("hello"), Str("ünïcode ✓")},
		{Bytes(nil), Bytes([]byte{}), Bytes([]byte{0, 255, 128})},
		{Null(), Int(7), Float(2.5), Str("mix"), Bytes([]byte("blob"))},
	}
	for _, r := range rows {
		buf := AppendRow(nil, r)
		if len(buf) != EncodedSize(r) {
			t.Errorf("EncodedSize(%v) = %d, actual %d", r, EncodedSize(r), len(buf))
		}
		dst := make(Row, len(r))
		n, err := DecodeRow(buf, dst, len(r), nil)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		if dst.Compare(r) != 0 {
			t.Errorf("round trip: got %v, want %v", dst, r)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b []byte) bool {
		r := Row{Int(i), Float(fl), Str(s), Bytes(b), Null()}
		buf := AppendRow(nil, r)
		dst := make(Row, len(r))
		if _, err := DecodeRow(buf, dst, len(r), nil); err != nil {
			return false
		}
		// NaN compares equal to itself under total order.
		return dst.Compare(r) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRowProjection(t *testing.T) {
	r := Row{Int(1), Str("skip me"), Float(2.5), Bytes([]byte("skip too")), Int(5)}
	buf := AppendRow(nil, r)
	dst := make(Row, len(r))
	cols := []bool{true, false, true, false, true}
	n, err := DecodeRow(buf, dst, len(r), cols)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("projection consumed %d of %d", n, len(buf))
	}
	if dst[0].I != 1 || dst[2].F != 2.5 || dst[4].I != 5 {
		t.Errorf("projected values wrong: %v", dst)
	}
	if !dst[1].IsNull() || !dst[3].IsNull() {
		t.Errorf("skipped columns materialized: %v", dst)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("short int accepted")
	}
	if _, _, err := DecodeValue([]byte{0xEE}); err == nil {
		t.Error("bad kind accepted")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 10, 'a'}); err == nil {
		t.Error("short string accepted")
	}
	dst := make(Row, 2)
	if _, err := DecodeRow([]byte{byte(KindInt)}, dst, 2, nil); err == nil {
		t.Error("truncated row accepted")
	}
	if _, err := DecodeRow([]byte{0xEE, 0}, dst, 2, []bool{false, true}); err == nil {
		t.Error("bad kind in skipped column accepted")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Str("abc"), "abc"},
		{Bytes([]byte{0xAB}), "0xab"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func BenchmarkAppendRow(b *testing.B) {
	r := Row{Int(123456), Float(185.0), Float(-0.5), Str("GALAXY"), Int(0x10)}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRow(buf[:0], r)
	}
}

func BenchmarkDecodeRowProjected(b *testing.B) {
	r := make(Row, 40)
	for i := range r {
		r[i] = Float(float64(i) * 1.5)
	}
	buf := AppendRow(nil, r)
	cols := make([]bool, 40)
	cols[0], cols[20], cols[39] = true, true, true
	dst := make(Row, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRow(buf, dst, 40, cols); err != nil {
			b.Fatal(err)
		}
	}
}
