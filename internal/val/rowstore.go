package val

import "sync"

// RowStore materializes rows into pooled slabs: operators that must hold
// their whole input (sort runs, top-k heaps, a nested-loop join's inner
// side) carve fixed-width rows out of chunked []Value slabs instead of
// heap-allocating one Row per input row — which was the dominant share of
// a sort-heavy query's allocations. Stores recycle through a sync.Pool
// with their slabs attached, so the steady state (the same query shape
// over and over) materializes rows without allocating at all.
//
// Ownership follows the batch contract: Values copied into a row keep
// their string/blob backing forever (producers never recycle those bytes),
// but the row slots themselves belong to the store — rows are valid only
// until Release, and consumers forward them by copying Values out (e.g.
// Batch.AppendRow) before releasing. A store must not be shared across
// goroutines; parallel workers each own one.

// rowSlabValues is the slab granularity: one slab serves rowSlabValues /
// width rows before the next is chained on.
const rowSlabValues = 4096

// maxRetainedSlabs bounds how much slab memory one pooled store keeps
// across queries; an unusually large materialization releases its excess
// to the GC instead of pinning it in the pool forever.
const maxRetainedSlabs = 32

var rowStorePool = sync.Pool{New: func() any { return &RowStore{pooled: true} }}

// RowStore carves fixed-width rows from chunked slabs. The zero value is
// unusable; obtain stores from GetRowStore or NewNoReuseRowStore.
type RowStore struct {
	width   int
	slabs   [][]Value
	slab    int // index of the slab being carved
	off     int // next free Value in that slab
	rows    []Row
	noReuse bool
	pooled  bool
}

// GetRowStore returns a pooled store carving rows of the given width,
// with previously grown slabs attached and marked free.
func GetRowStore(width int) *RowStore {
	s := rowStorePool.Get().(*RowStore)
	s.width = width
	s.slab, s.off = 0, 0
	s.rows = s.rows[:0]
	return s
}

// NewNoReuseRowStore returns a store whose every row is a fresh
// allocation and whose Release is a no-op — the ExecOptions.DisablePooling
// debug oracle.
func NewNoReuseRowStore(width int) *RowStore {
	return &RowStore{width: width, noReuse: true}
}

// NewRow carves one zeroed row of the store's width and records it in the
// Rows list. The row aliases slab storage: write it (Batch.RowAt) before
// carving depends on it, and never use it after Release.
func (s *RowStore) NewRow() Row {
	w := s.width
	if s.noReuse {
		r := make(Row, w)
		s.rows = append(s.rows, r)
		return r
	}
	if s.slab < len(s.slabs) && s.off+w > len(s.slabs[s.slab]) {
		s.slab++
		s.off = 0
	}
	if s.slab >= len(s.slabs) {
		size := rowSlabValues
		if w > size {
			size = w
		}
		s.slabs = append(s.slabs, make([]Value, size))
	}
	arr := s.slabs[s.slab]
	r := Row(arr[s.off : s.off+w : s.off+w])
	s.off += w
	s.rows = append(s.rows, r)
	return r
}

// Rows returns every row carved since the store was acquired, in carve
// order. The slice (and the rows) belong to the store: callers may reorder
// it in place (sorting a run) but must not retain it past Release.
func (s *RowStore) Rows() []Row { return s.rows }

// Release zeroes the used slab space (so pooled slabs don't pin string or
// blob backing across queries) and returns the store for reuse. No-op for
// no-reuse stores.
func (s *RowStore) Release() {
	if s == nil || !s.pooled {
		return
	}
	for i := 0; i <= s.slab && i < len(s.slabs); i++ {
		used := len(s.slabs[i])
		if i == s.slab {
			used = s.off
		}
		clear(s.slabs[i][:used])
	}
	if len(s.slabs) > maxRetainedSlabs {
		s.slabs = s.slabs[:maxRetainedSlabs:maxRetainedSlabs]
	}
	s.rows = s.rows[:0]
	s.slab, s.off, s.width = 0, 0, 0
	rowStorePool.Put(s)
}
