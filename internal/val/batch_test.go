package val

import (
	"testing"
)

func TestBatchAppendAndGather(t *testing.T) {
	b := NewBatch(3)
	rows := []Row{
		{Int(1), Float(1.5), Str("a")},
		{Int(2), Null(), Str("b")},
		{Int(3), Float(3.5), Null()},
	}
	for _, r := range rows {
		b.AppendRow(r)
	}
	if b.Size() != 3 || b.Len() != 3 {
		t.Fatalf("size/len = %d/%d, want 3/3", b.Size(), b.Len())
	}
	dst := make(Row, 3)
	for i, want := range rows {
		got := b.RowAt(i, dst)
		if got.Compare(want) != 0 {
			t.Fatalf("row %d = %v, want %v", i, got, want)
		}
	}
}

func TestBatchSelectionSemantics(t *testing.T) {
	b := NewBatch(1)
	for i := 0; i < 10; i++ {
		b.AppendRow(Row{Int(int64(i))})
	}
	// Narrow to the even rows.
	sel := b.SelScratch()
	for i := 0; i < 10; i += 2 {
		sel = append(sel, i)
	}
	b.SetSel(sel)
	if b.Len() != 5 || b.Size() != 10 {
		t.Fatalf("len/size = %d/%d, want 5/10", b.Len(), b.Size())
	}
	var seen []int64
	b.Each(func(i int) { seen = append(seen, b.Col(0)[i].I) })
	for k, v := range seen {
		if v != int64(2*k) {
			t.Fatalf("active row %d = %d, want %d", k, v, 2*k)
		}
	}
	// Narrowing again via SelScratch is an in-place compaction: keep
	// multiples of four.
	keep := b.SelScratch()
	for _, i := range b.Sel() {
		if b.Col(0)[i].I%4 == 0 {
			keep = append(keep, i)
		}
	}
	b.SetSel(keep)
	if b.Len() != 3 { // 0, 4, 8
		t.Fatalf("len = %d, want 3", b.Len())
	}
	// Truncate keeps a prefix of the active rows.
	b.Truncate(2)
	if b.Len() != 2 {
		t.Fatalf("after truncate len = %d, want 2", b.Len())
	}
	if got := b.Col(0)[b.Sel()[1]].I; got != 4 {
		t.Fatalf("second active row = %d, want 4", got)
	}
	// SetSel(nil) re-activates every physical row.
	b.SetSel(nil)
	if b.Len() != 10 {
		t.Fatalf("after clearing selection len = %d, want 10", b.Len())
	}
	// Truncate on a dense batch drops physical rows.
	b.Truncate(7)
	if b.Len() != 7 || b.Size() != 7 {
		t.Fatalf("dense truncate len/size = %d/%d, want 7/7", b.Len(), b.Size())
	}
}

func TestBatchNullAndPrunedColumns(t *testing.T) {
	need := []bool{true, false, true}
	b := NewBatchNeeded(3, need)
	if b.HasCol(1) {
		t.Fatal("column 1 should be pruned")
	}
	rec := AppendRow(nil, Row{Int(7), Str("skipped"), Null()})
	idx := b.Grow()
	if _, err := b.DecodeInto(idx, 0, rec, 3, need); err != nil {
		t.Fatal(err)
	}
	got := b.RowAt(0, make(Row, 3))
	if got[0].I != 7 {
		t.Fatalf("col 0 = %v, want 7", got[0])
	}
	if !got[1].IsNull() {
		t.Fatalf("pruned column reads %v, want NULL", got[1])
	}
	if !got[2].IsNull() {
		t.Fatalf("col 2 = %v, want NULL", got[2])
	}
	// Put materializes a pruned column on demand.
	b.Put(1, idx, Str("now present"))
	if !b.HasCol(1) || b.Col(1)[idx].S != "now present" {
		t.Fatal("Put did not materialize the column")
	}
}

func TestBatchDecodeCopiesBlobs(t *testing.T) {
	blob := []byte{1, 2, 3}
	rec := AppendRow(nil, Row{Bytes(blob)})
	b := NewBatch(1)
	idx := b.Grow()
	if _, err := b.DecodeInto(idx, 0, rec, 1, nil); err != nil {
		t.Fatal(err)
	}
	rec[2] = 99 // corrupt the "page buffer" byte holding blob[0]
	if got := b.Col(0)[idx].B[0]; got != 1 {
		t.Fatalf("batch blob aliases the decode buffer: got %d, want 1", got)
	}
}

func TestBatchCloneAndResetReuse(t *testing.T) {
	b := NewBatch(2)
	b.AppendRow(Row{Int(1), Bytes([]byte{0xaa})})
	b.AppendRow(Row{Int(2), Bytes([]byte{0xbb})})
	sel := append(b.SelScratch(), 1)
	b.SetSel(sel)

	c := b.Clone()
	if c.Len() != 1 || c.Size() != 2 {
		t.Fatalf("clone len/size = %d/%d, want 1/2", c.Len(), c.Size())
	}
	// The clone's blobs are deep copies.
	b.Col(1)[1].B[0] = 0x00
	if c.Col(1)[1].B[0] != 0xbb {
		t.Fatal("clone blob aliases the original")
	}

	// Reset keeps column storage but empties the batch for reuse.
	b.Reset()
	if b.Size() != 0 || b.Len() != 0 || b.Sel() != nil {
		t.Fatalf("after reset size=%d len=%d sel=%v", b.Size(), b.Len(), b.Sel())
	}
	b.AppendRow(Row{Int(9), Null()})
	if b.Size() != 1 || b.Col(0)[0].I != 9 {
		t.Fatal("reused batch did not accept new rows")
	}
	// The clone is unaffected by the reuse.
	if c.Col(0)[1].I != 2 {
		t.Fatalf("clone row mutated by original's reuse: %v", c.Col(0)[1])
	}
}

func TestBatchProjectView(t *testing.T) {
	b := NewBatch(3)
	b.AppendRow(Row{Int(1), Int(2), Int(3)})
	sel := append(b.SelScratch(), 0)
	b.SetSel(sel)
	v := b.Project(2)
	if v.Width() != 2 || v.Len() != 1 || v.Size() != 1 {
		t.Fatalf("view width/len/size = %d/%d/%d, want 2/1/1", v.Width(), v.Len(), v.Size())
	}
	if v.Col(1)[0].I != 2 {
		t.Fatalf("view col 1 = %v, want 2", v.Col(1)[0])
	}
}
