package val

import "sync"

// Batch and scratch memory pooling. Steady-state query execution acquires
// every batch, column array, and kernel scratch vector from here and
// releases it back, so the hot path stops allocating: a point lookup that
// used to pay ~70µs of per-query batch allocation reuses the arrays the
// previous query just returned.
//
// Three kinds of objects recycle independently:
//
//   - Column arrays ([]Value) live in size-classed pools — a small class
//     for seeks the planner expects to return a handful of rows, and a
//     full BatchSize class for everything else — so a 1-row index seek no
//     longer zeroes 1,024-slot arrays per needed column.
//   - Batch shells (the cols slice-of-slices plus selection backing) keep
//     their column arrays attached across Release/Get cycles: the common
//     steady state — the same query shape over and over — reacquires a
//     shell whose columns already line up and touches no pool at all.
//   - Arenas hand out per-batch kernel scratch (value vectors, selection
//     index scratch) with bump-pointer discipline; Reset at each filter
//     or projection entry recycles every vector at once.
//
// Safety model: forgetting to Release leaks nothing (the GC reclaims
// unpooled objects); releasing twice panics (best-effort — see Release),
// because a double-release would let two live batches alias one column
// array.
// Copied-out Values stay valid forever — recycling only reuses the column
// arrays, never a Value's string or blob backing bytes.

// SmallBatchSize is the row capacity of the small column class, used by
// index seeks whose plan-time dive estimate fits.
const SmallBatchSize = 64

var colClassSizes = [...]int{SmallBatchSize, BatchSize}

var colPools [len(colClassSizes)]sync.Pool

// boxPool recycles the *[]Value headers the column pools traffic in, so a
// putCol is allocation-free in steady state: without it, the &arr a Put
// needs boxes a fresh slice header on every column detach — which was most
// of a cached point lookup's remaining allocations, since each GetBatch
// reshaping a shell between two operators' shapes detaches several columns.
var boxPool sync.Pool

// getCol returns a pooled column array with at least the requested row
// capacity, sized to its class.
func getCol(capacity int) []Value {
	cl := 0
	for cl < len(colClassSizes)-1 && colClassSizes[cl] < capacity {
		cl++
	}
	if v := colPools[cl].Get(); v != nil {
		box := v.(*[]Value)
		arr := *box
		*box = nil
		boxPool.Put(box)
		return arr[:colClassSizes[cl]]
	}
	return make([]Value, colClassSizes[cl])
}

// putCol returns a column array to the largest class its capacity serves.
// Arrays below the smallest class are dropped for the GC.
func putCol(arr []Value) {
	c := cap(arr)
	if c < colClassSizes[0] {
		return
	}
	cl := 0
	for cl < len(colClassSizes)-1 && colClassSizes[cl+1] <= c {
		cl++
	}
	var box *[]Value
	if v := boxPool.Get(); v != nil {
		box = v.(*[]Value)
	} else {
		box = new([]Value)
	}
	*box = arr[:0]
	colPools[cl].Put(box)
}

var batchShells = sync.Pool{New: func() any { return &Batch{} }}

// GetBatch returns a pooled batch of the given width and row capacity
// (rounded up to a column class), materializing only the columns marked in
// need (nil = all). The batch starts empty. Callers must Release it when
// the last emit that could reference it has returned; consumers must not
// retain it (the usual batch contract). capacity ≤ SmallBatchSize selects
// the small column class — the fast path for index seeks the planner
// proved tiny.
func GetBatch(width, capacity int, need []bool) *Batch {
	b := batchShells.Get().(*Batch)
	if capacity <= 0 || capacity > BatchSize {
		capacity = BatchSize
	}
	if capacity <= SmallBatchSize {
		capacity = SmallBatchSize
	} else {
		capacity = BatchSize
	}
	b.capRows = capacity
	b.pooled = true
	b.released = false
	b.n = 0
	b.sel = nil
	// Fit the shell to the requested width, keeping attached arrays where
	// they line up and releasing the rest.
	if cap(b.cols) < width {
		cols := make([][]Value, width)
		copy(cols, b.cols)
		b.cols = cols
	} else {
		for i := width; i < len(b.cols); i++ {
			if b.cols[i] != nil {
				putCol(b.cols[i])
				b.cols[i] = nil
			}
		}
		b.cols = b.cols[:width]
	}
	for i := range b.cols {
		want := need == nil || need[i]
		have := b.cols[i]
		switch {
		case want && have == nil:
			b.cols[i] = getCol(capacity)
		case want && cap(have) < capacity:
			putCol(have)
			b.cols[i] = getCol(capacity)
		case want:
			b.cols[i] = have[:capacity]
		case have != nil:
			putCol(have)
			b.cols[i] = nil
		}
	}
	return b
}

// Release returns a pooled batch (and its attached column arrays) for
// reuse. Releasing a batch that did not come from the pool is a no-op, so
// operators can release unconditionally whether pooling is enabled or not.
// Releasing the same batch twice panics — two live handles to one column
// array is silent result corruption, and the panic is the loud
// alternative. The guard is best-effort: it catches the common bug (a
// double release before anyone re-acquires the shell) deterministically,
// but once GetBatch has handed the shell to a new owner, a still-held
// stale pointer is indistinguishable from the new handle, so the
// discipline remains: one Release per Get, then drop the pointer.
func (b *Batch) Release() {
	if b == nil || !b.pooled {
		return
	}
	if b.released {
		panic("val: Batch released twice")
	}
	b.released = true
	b.n = 0
	b.sel = nil
	batchShells.Put(b)
}

// ---- arena ----

// Arena is a per-worker bump allocator for kernel scratch: the value
// vectors expression kernels compute into and the index scratch the OR
// predicate merge uses. Vectors are recycled wholesale by Reset, which the
// batch-level entry points (filter, appendTo) call once per batch — so a
// compiled expression tree evaluates an entire batch without allocating,
// and nothing from one batch is live when the next begins. Kernels
// themselves never Reset: sibling and nested subexpressions of one
// evaluation each get distinct vectors.
//
// An arena must not be shared across goroutines; parallel scan workers
// each own one (the kernels they run are shared — the scratch is not).
type Arena struct {
	vals [][]Value
	ints [][]int
	cols [][][]Value
	nv   int
	ni   int
	nc   int
	// noReuse turns every acquisition into a fresh allocation — the
	// ExecOptions.DisablePooling debug mode, which proves recycling never
	// corrupts results by never recycling.
	noReuse bool
	pooled  bool
}

var arenaPool = sync.Pool{New: func() any { return &Arena{pooled: true} }}

// GetArena returns a pooled arena, with its previously grown chunks
// attached and marked free.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.Reset()
	return a
}

// NewNoReuseArena returns an arena whose every acquisition is a fresh
// allocation and whose Release is a no-op — the DisablePooling oracle.
func NewNoReuseArena() *Arena { return &Arena{noReuse: true} }

// Release returns a pooled arena for reuse; no-op for no-reuse arenas.
func (a *Arena) Release() {
	if a == nil || !a.pooled {
		return
	}
	arenaPool.Put(a)
}

// Reset marks every chunk free. Values from before the Reset must already
// have been copied out (batch entry points uphold this).
func (a *Arena) Reset() { a.nv, a.ni, a.nc = 0, 0, 0 }

// Vals returns a value vector of length n (n ≤ BatchSize recycles; larger
// requests allocate fresh). Contents are unspecified: kernels must write
// every position they later read, including explicit NULLs.
func (a *Arena) Vals(n int) []Value {
	if a.noReuse || n > BatchSize {
		return make([]Value, n)
	}
	if a.nv < len(a.vals) {
		v := a.vals[a.nv]
		a.nv++
		return v[:n]
	}
	v := make([]Value, BatchSize)
	a.vals = append(a.vals, v)
	a.nv++
	return v[:n]
}

// arenaColsCap bounds the recycled column-list chunks; wider requests
// (a scalar function with more arguments) allocate fresh.
const arenaColsCap = 8

// Cols returns a column-list scratch slice of length n — the per-call
// argument columns of a scalar-function kernel. Contents are unspecified.
func (a *Arena) Cols(n int) [][]Value {
	if a.noReuse || n > arenaColsCap {
		return make([][]Value, n)
	}
	if a.nc < len(a.cols) {
		v := a.cols[a.nc]
		a.nc++
		return v[:n]
	}
	v := make([][]Value, arenaColsCap)
	a.cols = append(a.cols, v)
	a.nc++
	return v[:n]
}

// Ints returns an empty index scratch slice with capacity BatchSize, for
// append-style survivor collection.
func (a *Arena) Ints() []int {
	if a.noReuse {
		return make([]int, 0, BatchSize)
	}
	if a.ni < len(a.ints) {
		v := a.ints[a.ni]
		a.ni++
		return v[:0]
	}
	v := make([]int, 0, BatchSize)
	a.ints = append(a.ints, v)
	a.ni++
	return v[:0]
}

// ---- emitter ----

// Emitter streams rows into batches: table-valued functions and other
// row-natured producers append rows and the emitter forwards each batch as
// it fills, so scans downstream never re-batch a []Row materialization.
// Close flushes the remainder and releases the batch.
type Emitter struct {
	b    *Batch
	emit func(*Batch) error
}

// NewEmitter returns an emitter of the given width. With pooled=false
// (ExecOptions.DisablePooling) the batch is allocated fresh. capacity
// sizes the first batch — pass the (possibly zero) expected row count;
// producers that usually return a handful of rows get the small column
// class rather than GetBatch's full-size default.
func NewEmitter(width, capacity int, pooled bool, emit func(*Batch) error) *Emitter {
	if capacity <= 0 {
		capacity = 1
	}
	var b *Batch
	if pooled {
		b = GetBatch(width, capacity, nil)
	} else {
		b = NewBatch(width)
	}
	return &Emitter{b: b, emit: emit}
}

// Append adds one row, forwarding the batch downstream when full.
func (e *Emitter) Append(r Row) error {
	e.b.AppendRow(r)
	if e.b.Full() {
		if err := e.emit(e.b); err != nil {
			return err
		}
		e.b.Reset()
	}
	return nil
}

// Close flushes any buffered rows and releases the batch. The emitter must
// not be used afterwards.
func (e *Emitter) Close() error {
	var err error
	if e.b.Size() > 0 {
		err = e.emit(e.b)
	}
	e.b.Release()
	e.b = nil
	return err
}

// Discard releases the batch without emitting buffered rows — the error
// path, after a downstream emit failed.
func (e *Emitter) Discard() {
	e.b.Release()
	e.b = nil
}
