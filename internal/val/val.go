// Package val defines the value and row representation shared by the storage
// engine, the B-tree indices, and the SQL engine: a compact tagged union
// covering the SQL types the SkyServer schema needs (NULL, 64-bit integers,
// 64-bit floats, strings, and binary blobs for cutout images and profile
// arrays), with total ordering and a self-describing binary codec.
package val

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates value types.
type Kind uint8

// Value kinds. KindNull sorts before everything; numeric kinds compare with
// each other numerically (as SQL does).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBytes
)

// String names the kind for diagnostics and schema listings.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "bigint"
	case KindFloat:
		return "float"
	case KindString:
		return "varchar"
	case KindBytes:
		return "varbinary"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B []byte
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bytes returns a blob value.
func Bytes(b []byte) Value { return Value{K: KindBytes, B: b} }

// Bool returns the SQL-ish boolean encoding used by the engine: bigint 0/1.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsFloat converts numeric values to float64. Returns false for NULL,
// strings and blobs.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts numeric values to int64 (floats truncate). Returns false
// for NULL, strings and blobs.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KindInt:
		return v.I, true
	case KindFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a WHERE context.
func (v Value) Truthy() bool {
	switch v.K {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// Compare totally orders values: NULL < numbers < strings < blobs; numbers
// compare numerically across int/float; strings and blobs lexicographically.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		if vr < wr {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindNull:
		return 0
	case KindInt:
		if w.K == KindInt {
			switch {
			case v.I < w.I:
				return -1
			case v.I > w.I:
				return 1
			}
			return 0
		}
		return cmpFloat(float64(v.I), w.F)
	case KindFloat:
		if w.K == KindInt {
			return cmpFloat(v.F, float64(w.I))
		}
		return cmpFloat(v.F, w.F)
	case KindString:
		switch {
		case v.S < w.S:
			return -1
		case v.S > w.S:
			return 1
		}
		return 0
	default: // KindBytes
		return bytesCompare(v.B, w.B)
	}
}

func (v Value) rank() int {
	switch v.K {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindString:
		return 2
	default:
		return 3
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// String renders the value the way the CSV/console writers print it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return fmt.Sprintf("0x%x", v.B)
	}
}

// AppendString appends String()'s exact rendering to dst without
// allocating (beyond dst growth) — the streaming serializers' path.
func (v Value) AppendString(dst []byte) []byte {
	switch v.K {
	case KindNull:
		return append(dst, "NULL"...)
	case KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindString:
		return append(dst, v.S...)
	default:
		dst = append(dst, "0x"...)
		const hex = "0123456789abcdef"
		for _, b := range v.B {
			dst = append(dst, hex[b>>4], hex[b&0xf])
		}
		return dst
	}
}

// Row is an ordered tuple of values, matching a table's column order.
type Row []Value

// Clone deep-copies a row (blob bytes included) so callers may retain rows
// beyond the lifetime of a scan buffer.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i, v := range out {
		if v.K == KindBytes && v.B != nil {
			b := make([]byte, len(v.B))
			copy(b, v.B)
			out[i].B = b
		}
	}
	return out
}

// Compare orders rows lexicographically column by column; shorter rows sort
// first when they are prefixes.
func (r Row) Compare(s Row) int {
	n := len(r)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(s[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(r) < len(s):
		return -1
	case len(r) > len(s):
		return 1
	}
	return 0
}

// Binary codec. A row is encoded as a sequence of (kind, payload) fields:
//
//	null:   0x00
//	int:    0x01 + 8-byte little-endian
//	float:  0x02 + 8-byte IEEE 754 little-endian
//	string: 0x03 + uvarint length + bytes
//	bytes:  0x04 + uvarint length + bytes
//
// Fields are self-delimiting, so a decoder can skip unwanted columns without
// materializing them — the engine exploits this for projection pushdown.

// AppendValue encodes v onto buf and returns the extended slice.
func AppendValue(buf []byte, v Value) []byte {
	switch v.K {
	case KindNull:
		return append(buf, byte(KindNull))
	case KindInt:
		buf = append(buf, byte(KindInt))
		return binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	case KindFloat:
		buf = append(buf, byte(KindFloat))
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KindString:
		buf = append(buf, byte(KindString))
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		return append(buf, v.S...)
	case KindBytes:
		buf = append(buf, byte(KindBytes))
		buf = binary.AppendUvarint(buf, uint64(len(v.B)))
		return append(buf, v.B...)
	default:
		return append(buf, byte(KindNull))
	}
}

// AppendRow encodes all fields of r onto buf.
func AppendRow(buf []byte, r Row) []byte {
	for _, v := range r {
		buf = AppendValue(buf, v)
	}
	return buf
}

// EncodedSize returns the exact number of bytes AppendRow would produce.
func EncodedSize(r Row) int {
	n := 0
	for _, v := range r {
		switch v.K {
		case KindNull:
			n++
		case KindInt, KindFloat:
			n += 9
		case KindString:
			n += 1 + uvarintLen(uint64(len(v.S))) + len(v.S)
		case KindBytes:
			n += 1 + uvarintLen(uint64(len(v.B))) + len(v.B)
		}
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeValue decodes one value from buf, returning it and the bytes
// consumed. Blob and string payloads alias buf; callers that retain them
// must Clone.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, fmt.Errorf("val: empty buffer")
	}
	switch Kind(buf[0]) {
	case KindNull:
		return Null(), 1, nil
	case KindInt:
		if len(buf) < 9 {
			return Value{}, 0, fmt.Errorf("val: short int field")
		}
		return Int(int64(binary.LittleEndian.Uint64(buf[1:9]))), 9, nil
	case KindFloat:
		if len(buf) < 9 {
			return Value{}, 0, fmt.Errorf("val: short float field")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))), 9, nil
	case KindString:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 || len(buf) < 1+n+int(l) {
			return Value{}, 0, fmt.Errorf("val: short string field")
		}
		return Str(string(buf[1+n : 1+n+int(l)])), 1 + n + int(l), nil
	case KindBytes:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 || len(buf) < 1+n+int(l) {
			return Value{}, 0, fmt.Errorf("val: short bytes field")
		}
		return Bytes(buf[1+n : 1+n+int(l)]), 1 + n + int(l), nil
	default:
		return Value{}, 0, fmt.Errorf("val: bad kind byte 0x%02x", buf[0])
	}
}

// skipValue returns the encoded length of the field at the head of buf
// without materializing it.
func skipValue(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("val: empty buffer")
	}
	switch Kind(buf[0]) {
	case KindNull:
		return 1, nil
	case KindInt, KindFloat:
		if len(buf) < 9 {
			return 0, fmt.Errorf("val: short numeric field")
		}
		return 9, nil
	case KindString, KindBytes:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 || len(buf) < 1+n+int(l) {
			return 0, fmt.Errorf("val: short var field")
		}
		return 1 + n + int(l), nil
	default:
		return 0, fmt.Errorf("val: bad kind byte 0x%02x", buf[0])
	}
}

// DecodeRow decodes width fields from buf into dst (which must have length
// ≥ width). If cols is non-nil, only the column indices present in cols are
// materialized; other slots are left untouched (callers pre-fill with NULL).
// It returns the number of bytes consumed.
func DecodeRow(buf []byte, dst Row, width int, cols []bool) (int, error) {
	off := 0
	for i := 0; i < width; i++ {
		if cols != nil && !cols[i] {
			n, err := skipValue(buf[off:])
			if err != nil {
				return 0, fmt.Errorf("val: column %d: %w", i, err)
			}
			off += n
			continue
		}
		v, n, err := DecodeValue(buf[off:])
		if err != nil {
			return 0, fmt.Errorf("val: column %d: %w", i, err)
		}
		dst[i] = v
		off += n
	}
	return off, nil
}
