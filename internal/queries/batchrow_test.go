package queries

import (
	"fmt"
	"sort"
	"testing"

	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// TestBatchAndRowPathsAgree runs the whole Figure 13 workload twice — once
// with the vectorized expression kernels and once with ForceRowExprs
// routing every filter and projection through the row-at-a-time fallback —
// and asserts identical result sets. This is the executor's equivalence
// oracle: any divergence between a kernel and the row semantics it
// specializes shows up as a failing query here.
func TestBatchAndRowPathsAgree(t *testing.T) {
	db, _ := survey(t)
	for _, q := range All() {
		q := q
		t.Run("Q"+q.ID, func(t *testing.T) {
			vecSess := sqlengine.NewSession(db.DB)
			rowSess := sqlengine.NewSession(db.DB)
			sql, err := q.SQL(vecSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
			}
			sqlRow, err := q.SQL(rowSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup (row): %v", q.ID, err)
			}
			if sql != sqlRow {
				t.Fatalf("Q%s parameter lookups diverge:\n%s\nvs\n%s", q.ID, sql, sqlRow)
			}
			vec, err := vecSess.Exec(sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("Q%s vectorized: %v", q.ID, err)
			}
			row, err := rowSess.Exec(sql, sqlengine.ExecOptions{ForceRowExprs: true})
			if err != nil {
				t.Fatalf("Q%s row fallback: %v", q.ID, err)
			}
			// Q20 is TOP 100 without ORDER BY over a parallel scan: which
			// 100 pairs surface is nondeterministic, so only the
			// cardinality is comparable.
			if q.ID == "20" {
				if len(vec.Rows) != len(row.Rows) {
					t.Fatalf("Q20: row counts diverge: %d vs %d", len(vec.Rows), len(row.Rows))
				}
				return
			}
			compareResults(t, q.ID, vec, row)
		})
	}
}

// TestPooledAndUnpooledPathsAgree runs the Figure 13 workload twice — once
// with steady-state batch/scratch recycling (the default) and once with
// ExecOptions.DisablePooling allocating every batch and kernel vector
// fresh — and asserts identical result sets. A recycled column array that
// leaks one query's values into the next, a kernel that reads an arena
// position it didn't write, or a released batch still referenced
// downstream all surface as a failing query here.
func TestPooledAndUnpooledPathsAgree(t *testing.T) {
	db, _ := survey(t)
	for _, q := range All() {
		q := q
		t.Run("Q"+q.ID, func(t *testing.T) {
			pooledSess := sqlengine.NewSession(db.DB)
			freshSess := sqlengine.NewSession(db.DB)
			sql, err := q.SQL(pooledSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
			}
			sqlFresh, err := q.SQL(freshSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup (no pool): %v", q.ID, err)
			}
			if sql != sqlFresh {
				t.Fatalf("Q%s parameter lookups diverge:\n%s\nvs\n%s", q.ID, sql, sqlFresh)
			}
			// Warm the process-global pools with a throwaway session
			// running the same query, so the measured run executes on
			// arrays a previous execution just recycled — the state the
			// oracle is meant to distrust. (A separate session keeps
			// temp-table side effects from doubling.)
			warmSess := sqlengine.NewSession(db.DB)
			if sqlWarm, err := q.SQL(warmSess); err == nil {
				if _, err := warmSess.Exec(sqlWarm, sqlengine.ExecOptions{}); err != nil {
					t.Fatalf("Q%s pooled warmup: %v", q.ID, err)
				}
			}
			pooled, err := pooledSess.Exec(sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("Q%s pooled: %v", q.ID, err)
			}
			fresh, err := freshSess.Exec(sql, sqlengine.ExecOptions{DisablePooling: true})
			if err != nil {
				t.Fatalf("Q%s no-pool: %v", q.ID, err)
			}
			if q.ID == "20" {
				if len(pooled.Rows) != len(fresh.Rows) {
					t.Fatalf("Q20: row counts diverge: %d vs %d", len(pooled.Rows), len(fresh.Rows))
				}
				return
			}
			compareResults(t, q.ID, pooled, fresh)
		})
	}
}

func compareResults(t *testing.T, id string, vec, row *sqlengine.Result) {
	t.Helper()
	if len(vec.Cols) != len(row.Cols) {
		t.Fatalf("Q%s: column counts diverge: %d vs %d", id, len(vec.Cols), len(row.Cols))
	}
	for i := range vec.Cols {
		if vec.Cols[i] != row.Cols[i] {
			t.Fatalf("Q%s: column %d name %q vs %q", id, i, vec.Cols[i], row.Cols[i])
		}
	}
	if len(vec.Rows) != len(row.Rows) {
		t.Fatalf("Q%s: row counts diverge: %d vectorized vs %d row-at-a-time",
			id, len(vec.Rows), len(row.Rows))
	}
	// Parallel scans emit in nondeterministic order; compare as multisets
	// via canonical encodings.
	a := canonicalize(vec.Rows)
	b := canonicalize(row.Rows)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Q%s: result multisets diverge at sorted position %d:\n%s\nvs\n%s",
				id, i, a[i], b[i])
		}
	}
}

func canonicalize(rows []val.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}
