package queries

import (
	"sync"
	"testing"

	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
)

var (
	once  sync.Once
	sdb   *schema.SkyDB
	truth pipeline.Truth
	bErr  error
)

func survey(t *testing.T) (*schema.SkyDB, pipeline.Truth) {
	t.Helper()
	once.Do(func() {
		fg := storage.NewMemFileGroup(4, 4096)
		sdb, bErr = schema.Build(fg)
		if bErr != nil {
			return
		}
		l := load.New(sdb)
		var stats *pipeline.Stats
		stats, bErr = l.LoadSurvey(pipeline.Config{Scale: 1.0 / 2000, SkipFrames: true})
		if bErr != nil {
			return
		}
		truth = stats.Truth
		if _, err := neighbors.Build(sdb, neighbors.DefaultRadiusArcmin); err != nil {
			bErr = err
		}
	})
	if bErr != nil {
		t.Fatalf("survey: %v", bErr)
	}
	return sdb, truth
}

func TestWorkloadOrderMatchesFigure13(t *testing.T) {
	want := []string{"8", "1", "9", "10A", "10", "19", "12", "16", "4", "2",
		"13", "11", "6", "7", "15B", "17", "14", "15A", "5", "3", "20", "18"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("workload has %d queries, want %d", len(all), len(want))
	}
	for i, q := range all {
		if q.ID != want[i] {
			t.Errorf("position %d: query %s, want %s", i, q.ID, want[i])
		}
		if q.Title == "" || q.Intent == "" || q.Path == "" {
			t.Errorf("query %s missing documentation", q.ID)
		}
	}
}

func TestEveryQueryRunsClean(t *testing.T) {
	db, tr := survey(t)
	for _, q := range All() {
		q := q
		t.Run("Q"+q.ID, func(t *testing.T) {
			s := sqlengine.NewSession(db.DB)
			timing := Run(s, q, tr, sqlengine.ExecOptions{})
			if timing.Err != nil {
				t.Fatalf("Q%s: %v", q.ID, timing.Err)
			}
			if timing.Elapsed <= 0 {
				t.Errorf("Q%s: no elapsed time recorded", q.ID)
			}
		})
	}
}

func TestPlantedTruthQueries(t *testing.T) {
	db, tr := survey(t)
	s := sqlengine.NewSession(db.DB)
	for _, q := range All() {
		switch q.ID {
		case "1", "15A", "15B":
			timing := Run(s, q, tr, sqlengine.ExecOptions{})
			if timing.Err != nil {
				t.Errorf("Q%s planted truth: %v", q.ID, timing.Err)
			}
		}
	}
	if tr.Q1Galaxies != 19 {
		t.Errorf("Q1 truth %d, want the paper's 19", tr.Q1Galaxies)
	}
	if tr.NEOPairs != 4 {
		t.Errorf("Q15B truth %d, want the paper's 4", tr.NEOPairs)
	}
}

func TestRunAllProducesFigure13Series(t *testing.T) {
	db, tr := survey(t)
	timings := RunAll(db.DB, tr, sqlengine.ExecOptions{})
	if len(timings) != 22 {
		t.Fatalf("%d timings", len(timings))
	}
	for _, tm := range timings {
		if tm.Err != nil {
			t.Errorf("Q%s: %v", tm.ID, tm.Err)
		}
	}
	// The workload must span a range of costs: the scan-bound queries
	// must visit far more rows than the index lookups.
	byID := map[string]Timing{}
	for _, tm := range timings {
		byID[tm.ID] = tm
	}
	if byID["15A"].Scanned < byID["9"].Scanned*5 {
		t.Errorf("Q15A (scan, %d rows visited) should dwarf Q9 (seek, %d)",
			byID["15A"].Scanned, byID["9"].Scanned)
	}
}

func TestPublicLimitsTruncateWorkload(t *testing.T) {
	db, tr := survey(t)
	s := sqlengine.NewSession(db.DB)
	// Q13 (grid counts) returns many rows; the public 1,000-row limit
	// must truncate politely rather than error.
	var q13 Query
	for _, q := range All() {
		if q.ID == "13" {
			q13 = q
		}
	}
	sql, err := q13.SQL(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(sql, sqlengine.ExecOptions{MaxRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 50 {
		t.Errorf("limit ignored: %d rows", len(res.Rows))
	}
	_ = tr
}
