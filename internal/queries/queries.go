// Package queries implements the SkyServer evaluation workload: the twenty
// astronomy queries of [Szalay] (timed in [Gray] and summarized in §3/§11
// of the SkyServer paper), in the order Figure 13 plots them:
//
//	8, 1, 9, 10A, 10, 19, 12, 16, 4, 2, 13, 11, 6, 7, 15B, 17, 14, 15A, 5, 3, 20, 18
//
// Only Q1, Q15A and Q15B appear verbatim in the SkyServer paper; the others
// are reconstructed from their published characterizations (spatial lookup,
// color cuts over sequential scans, grouped star counts, spectro joins,
// neighbor-pair mining). Each Query documents its astronomy intent, carries
// runnable SQL (parameters resolved against the loaded survey), and checks
// its answer against the generator's planted truths where one exists.
package queries

import (
	"fmt"
	"time"

	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
)

// Query is one evaluation workload entry.
type Query struct {
	// ID is the Figure 13 identifier ("8", "10A", "15B", …).
	ID string
	// Title is a one-line name.
	Title string
	// Intent explains what an astronomer is asking.
	Intent string
	// Path is the access-path shape the plan should take.
	Path string
	// SQL produces the statement text, resolving any survey-dependent
	// parameters (a known objID, for example) via quick lookups.
	SQL func(s *sqlengine.Session) (string, error)
	// Check validates the result against planted truths; nil-safe checks
	// return an error message describing the mismatch.
	Check func(res *sqlengine.Result, truth pipeline.Truth) error
}

// Timing is one measured execution for the Figure 13 report.
type Timing struct {
	ID      string
	Rows    int
	Elapsed time.Duration
	CPU     time.Duration
	Scanned int64
	Err     error
}

// staticSQL wraps constant SQL.
func staticSQL(sql string) func(*sqlengine.Session) (string, error) {
	return func(*sqlengine.Session) (string, error) { return sql, nil }
}

// lookupInt runs a one-value query and substitutes it into a format string.
func lookupInt(lookup, format string) func(*sqlengine.Session) (string, error) {
	return func(s *sqlengine.Session) (string, error) {
		res, err := s.Exec(lookup, sqlengine.ExecOptions{})
		if err != nil {
			return "", fmt.Errorf("parameter lookup: %w", err)
		}
		if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
			return "", fmt.Errorf("parameter lookup returned no rows")
		}
		return fmt.Sprintf(format, res.Rows[0][0].I), nil
	}
}

func wantRows(min int) func(*sqlengine.Result, pipeline.Truth) error {
	return func(res *sqlengine.Result, _ pipeline.Truth) error {
		if len(res.Rows) < min {
			return fmt.Errorf("got %d rows, want ≥ %d", len(res.Rows), min)
		}
		return nil
	}
}

func noCheck(*sqlengine.Result, pipeline.Truth) error { return nil }

// Q1SQL is Query 1 verbatim from §11 of the paper.
const Q1SQL = `
declare @saturated bigint;
set @saturated = dbo.fPhotoFlags('saturated');
select G.objID, GN.distance
into ##results
from Galaxy as G
join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID
where (G.flags & @saturated) = 0
order by distance`

// Q15ASQL is the slow-mover (asteroid) query verbatim from §11.
const Q15ASQL = `
select objID,
       sqrt(rowv*rowv+colv*colv) as velocity,
       dbo.fGetUrlExpId(objID)   as Url
into ##results
from PhotoObj
where (rowv*rowv+colv*colv) between 50 and 1000
and rowv >= 0 and colv >= 0`

// Q15BSQL is the fast-mover (NEO streak pair) query verbatim from §11.
const Q15BSQL = `
Select r.objID as rId, g.objId as gId,
       dbo.fGetUrlExpId(r.objID) as rURL,
       dbo.fGetUrlExpId(g.objID) as gURL
from   PhotoObj r, PhotoObj g
where  r.run = g.run and r.camcol=g.camcol
  and abs(g.field-r.field) <= 1
  and ((power(r.q_r,2) + power(r.u_r,2)) > 0.111111 )
  and r.fiberMag_r between 6 and 22
  and r.fiberMag_r < r.fiberMag_u
  and r.fiberMag_r < r.fiberMag_g
  and r.fiberMag_r < r.fiberMag_i
  and r.fiberMag_r < r.fiberMag_z
  and r.parentID=0
  and r.isoA_r/r.isoB_r > 1.5
  and r.isoA_r > 2.0
  and ((power(g.q_g,2) + power(g.u_g,2)) > 0.111111 )
  and g.fiberMag_g between 6 and 22
  and g.fiberMag_g < g.fiberMag_u
  and g.fiberMag_g < g.fiberMag_r
  and g.fiberMag_g < g.fiberMag_i
  and g.fiberMag_g < g.fiberMag_z
  and g.parentID=0
  and g.isoA_g/g.isoB_g > 1.5
  and g.isoA_g > 2.0
  and sqrt(power(r.cx-g.cx,2)
     +power(r.cy-g.cy,2) +power(r.cz-g.cz,2))*
          (180*60/pi()) < 4.0
  and abs(r.fiberMag_r-g.fiberMag_g)< 2.0`

// All returns the workload in Figure 13's plotted order.
func All() []Query {
	haLine := schema.SpecLineNames[22] // H_alpha, lineID 23
	return []Query{
		{
			ID:    "8",
			Title: "Galaxies with strong H-alpha emission",
			Intent: "Find spectra of galaxies whose H-alpha line has a large " +
				"equivalent width (active star formation).",
			Path: "SpecLine scan joined to SpecObj by PK probe",
			SQL: staticSQL(fmt.Sprintf(`
				select s.specObjID, s.z, l.ew
				from SpecLine l join SpecObj s on s.specObjID = l.specObjID
				where l.lineID = %d and l.ew > 12 and s.specClass = %d`,
				haLine.ID, schema.SpecClassGalaxy)),
			Check: noCheck,
		},
		{
			ID:    "1",
			Title: "Galaxies near a point without saturated pixels",
			Intent: "All galaxies without saturated pixels within 1 arcmin of " +
				"(185, -0.5) — the paper's worked example, answer 19.",
			Path: "HTM TVF nested-loop joined to PhotoObj PK (Figure 10)",
			SQL:  staticSQL(Q1SQL),
			Check: func(res *sqlengine.Result, truth pipeline.Truth) error {
				if len(res.Rows) != truth.Q1Galaxies {
					return fmt.Errorf("got %d galaxies, planted %d", len(res.Rows), truth.Q1Galaxies)
				}
				return nil
			},
		},
		{
			ID:     "9",
			Title:  "Quasars in a redshift window",
			Intent: "Quasars with 2.5 < z < 2.7 for absorption-line studies.",
			Path:   "index seek on SpecObj(specClass, z)",
			SQL: staticSQL(fmt.Sprintf(`
				select specObjID, objID, z, zConf
				from SpecObj
				where specClass = %d and z between 2.5 and 2.7`,
				schema.SpecClassQSO)),
			Check: noCheck,
		},
		{
			ID:     "10A",
			Title:  "The spectrum of one known object",
			Intent: "Drill down from a photo object to its spectrum and lines.",
			Path:   "two PK/secondary index seeks",
			SQL: lookupInt(
				"select top 1 objID from SpecObj where objID > 0 order by specObjID",
				`select s.specObjID, s.z, l.lineID, l.wave
				 from SpecObj s join SpecLine l on l.specObjID = s.specObjID
				 where s.objID = %d`),
			Check: wantRows(1),
		},
		{
			ID:     "10",
			Title:  "Spectra matched to galaxy photometry",
			Intent: "Join confident galaxy spectra to their photometric objects.",
			Path:   "SpecObj index scan, PhotoObj PK probes",
			SQL: staticSQL(fmt.Sprintf(`
				select s.specObjID, s.z, p.r, p.g - p.r as color
				from SpecObj s join PhotoObj p on p.objID = s.objID
				where s.specClass = %d and s.zConf > 0.9 and p.type = %d`,
				schema.SpecClassGalaxy, schema.TypeGalaxy)),
			Check: wantRows(1),
		},
		{
			ID:     "19",
			Title:  "Radio-loud quasars",
			Intent: "Quasar spectra whose photo object has a FIRST radio match.",
			Path:   "small FIRST table joined by PK probes",
			SQL: staticSQL(fmt.Sprintf(`
				select q.specObjID, q.z, f.peakFlux
				from First f
				join SpecObj q on q.objID = f.objID
				where q.specClass = %d`, schema.SpecClassQSO)),
			Check: noCheck,
		},
		{
			ID:     "12",
			Title:  "UV-excess point sources",
			Intent: "Point sources bluer than the stellar locus (QSO candidates).",
			Path:   "covering index scan on (type, mode, r)",
			SQL: staticSQL(fmt.Sprintf(`
				select objID, u, g, r
				from PhotoObj
				where type = %d and mode = 1 and u - g < 0.6 and g < 21`,
				schema.TypeStar)),
			Check: wantRows(1),
		},
		{
			ID:     "16",
			Title:  "Star counts by magnitude bin",
			Intent: "The star number-count histogram 14 < r < 22.",
			Path:   "covering index scan + hash aggregation",
			SQL: staticSQL(`
				select floor(r) as bin, count(*) as n
				from Star
				where r between 14 and 22
				group by floor(r)
				order by bin`),
			Check: wantRows(3),
		},
		{
			ID:     "4",
			Title:  "Galaxies with large isophotal axes",
			Intent: "Big nearby galaxies: red-band isophotal major axis > 7.5 arcsec.",
			Path:   "sequential scan of Galaxy view",
			SQL: staticSQL(`
				select objID, isoA_r, isoB_r
				from Galaxy
				where isoA_r > 7.5`),
			Check: wantRows(1),
		},
		{
			ID:    "2",
			Title: "Galaxies by blue surface brightness",
			Intent: "Galaxies with mean surface brightness in g between 23 and " +
				"25 mag/arcsec², in a declination band.",
			Path: "sequential scan with arithmetic predicate",
			SQL: staticSQL(`
				select objID, g, petroR50_g
				from Galaxy
				where petroR50_g > 0
				  and g + 2.5*log10(2*3.14159265*petroR50_g*petroR50_g) between 23 and 25
				  and dec between -10 and 10`),
			Check: noCheck,
		},
		{
			ID:     "13",
			Title:  "Galaxy counts on a sky grid",
			Intent: "Large-scale structure: galaxy counts in 0.25° cells.",
			Path:   "sequential scan + grouped aggregation",
			SQL: staticSQL(`
				select floor(ra*4) as raCell, floor(dec*4) as decCell, count(*) as n
				from Galaxy
				group by floor(ra*4), floor(dec*4)
				order by raCell, decCell`),
			Check: wantRows(10),
		},
		{
			ID:     "11",
			Title:  "Low-z galaxies with consistent redshifts",
			Intent: "Nearby galaxies whose emission-line and final redshifts agree.",
			Path:   "SpecObj seek joined to elRedShift by PK probe",
			SQL: staticSQL(fmt.Sprintf(`
				select s.specObjID, s.z, e.z as elZ
				from SpecObj s, elRedShift e
				where s.specObjID = e.specObjID
				  and s.specClass = %d and s.z < 0.05
				  and abs(s.z - e.z) < 0.002`, schema.SpecClassGalaxy)),
			Check: noCheck,
		},
		{
			ID:    "6",
			Title: "Variable stars from repeat observations",
			Intent: "Stars observed on both nights (stripe overlap) whose " +
				"magnitude changed by more than 0.1.",
			Path: "Neighbors-driven three-way self-join",
			SQL: staticSQL(fmt.Sprintf(`
				select p.objID, s.objID, p.r - s.r as dr, n.distance
				from PhotoObj p
				join Neighbors n on n.objID = p.objID
				join PhotoObj s on s.objID = n.neighborObjID
				where p.type = %d and p.mode = 1
				  and s.type = %d and s.mode = 2
				  and n.distance < 0.05
				  and abs(p.r - s.r) > 0.1`,
				schema.TypeStar, schema.TypeStar)),
			Check: wantRows(1),
		},
		{
			ID:     "7",
			Title:  "Star color histogram",
			Intent: "The distribution of u-g colors of primary stars.",
			Path:   "covering index scan + grouped aggregation",
			SQL: staticSQL(`
				select floor((u - g)*10) as colorBin, count(*) as n
				from Star
				group by floor((u - g)*10)
				order by colorBin`),
			Check: wantRows(5),
		},
		{
			ID:    "15B",
			Title: "Fast-moving objects (NEO streak pairs)",
			Intent: "Pairs of elongated single-band detections that line up " +
				"across adjacent fields — near-earth-object streaks. Paper: 4 pairs.",
			Path: "nested loop of two covering-index accesses (Figure 12)",
			SQL:  staticSQL(Q15BSQL),
			Check: func(res *sqlengine.Result, truth pipeline.Truth) error {
				if len(res.Rows) != truth.NEOPairs {
					return fmt.Errorf("got %d pairs, planted %d", len(res.Rows), truth.NEOPairs)
				}
				return nil
			},
		},
		{
			ID:    "17",
			Title: "Photometric redshift calibration bins",
			Intent: "Mean spectroscopic redshift per color bin — the training " +
				"set behind the photometric redshift estimator of §11.",
			Path: "spectro join + grouped aggregation",
			SQL: staticSQL(fmt.Sprintf(`
				select floor((p.g - p.r)*5) as colorBin, avg(s.z) as meanZ, count(*) as n
				from SpecObj s join PhotoObj p on p.objID = s.objID
				where s.specClass = %d
				group by floor((p.g - p.r)*5)
				order by colorBin`, schema.SpecClassGalaxy)),
			Check: wantRows(1),
		},
		{
			ID:    "14",
			Title: "Objects with colors like a given object",
			Intent: "'Find other objects like this one': match all primaries " +
				"within 0.05 mag in three colors of a reference object (iterative: " +
				"the reference row feeds the search).",
			Path: "temp-table reference row nested-looped against a scan",
			SQL: lookupInt(
				"select top 1 objID from Galaxy where r < 18 order by objID",
				`select objID, u - g as ug, g - r as gr, r - i as ri
				 into ##ref
				 from PhotoObj where objID = %d;
				 select p.objID, p.u - p.g as ug
				 from ##ref x, PhotoObj p
				 where p.mode = 1
				   and p.objID <> x.objID
				   and abs((p.u - p.g) - x.ug) < 0.05
				   and abs((p.g - p.r) - x.gr) < 0.05
				   and abs((p.r - p.i) - x.ri) < 0.05`),
			Check: noCheck,
		},
		{
			ID:     "15A",
			Title:  "Slow-moving objects (asteroids)",
			Intent: "Objects whose position moved between the 5-band exposures (§11).",
			Path:   "parallel sequential scan of PhotoObj (Figure 11)",
			SQL:    staticSQL(Q15ASQL),
			Check: func(res *sqlengine.Result, truth pipeline.Truth) error {
				if len(res.Rows) != truth.Asteroids {
					return fmt.Errorf("got %d asteroids, planted %d", len(res.Rows), truth.Asteroids)
				}
				return nil
			},
		},
		{
			ID:    "5",
			Title: "Quasar candidates by color cut",
			Intent: "Point sources with quasar colors — the archetypal 'table " +
				"scan with a very complex predicate' of §11.",
			Path: "sequential scan, complex predicate",
			SQL: staticSQL(fmt.Sprintf(`
				select objID, u, g, r, i, z
				from PhotoObj
				where mode = 1 and type = %d
				  and ((u - g < 0.6 and g - r < 0.5) or u > 22.3)
				  and g < 21 and i between 0 and 30 and z between 0 and 30`,
				schema.TypeStar)),
			Check: noCheck,
		},
		{
			ID:     "3",
			Title:  "Bright galaxies behind high extinction",
			Intent: "Galaxies brighter than r=22 seen through heavy dust.",
			Path:   "sequential scan of Galaxy view",
			SQL: staticSQL(`
				select objID, r, extinction_r
				from Galaxy
				where r < 22 and extinction_r > 0.06`),
			Check: noCheck,
		},
		{
			ID:    "20",
			Title: "Bright close galaxy pairs",
			Intent: "Merging-candidate pairs: primary galaxies within 0.5 " +
				"arcmin with comparable brightness.",
			Path: "Neighbors three-way join",
			SQL: staticSQL(fmt.Sprintf(`
				select top 100 p1.objID, p2.objID, n.distance
				from PhotoObj p1
				join Neighbors n on n.objID = p1.objID
				join PhotoObj p2 on p2.objID = n.neighborObjID
				where p1.type = %d and p1.mode = 1 and p1.r < 19
				  and p2.type = %d and p2.mode = 1
				  and p1.objID < p2.objID
				  and abs(p1.r - p2.r) < 1.0`,
				schema.TypeGalaxy, schema.TypeGalaxy)),
			Check: noCheck,
		},
		{
			ID:    "18",
			Title: "Gravitational lens candidates",
			Intent: "Tight groups of faint objects with matching colors in " +
				"three bands — the classic lens search, the heaviest join.",
			Path: "Neighbors three-way join with full color residual",
			SQL: staticSQL(fmt.Sprintf(`
				select p1.objID, p2.objID, n.distance,
				       p1.u - p1.g as ug1, p2.u - p2.g as ug2
				from PhotoObj p1
				join Neighbors n on n.objID = p1.objID
				join PhotoObj p2 on p2.objID = n.neighborObjID
				where p1.mode = 1 and p2.mode = 1
				  and p1.type = %d and p2.type = %d
				  and p1.objID < p2.objID
				  and n.distance < 0.25
				  and abs((p1.u - p1.g) - (p2.u - p2.g)) < 0.1
				  and abs((p1.g - p1.r) - (p2.g - p2.r)) < 0.1
				  and abs((p1.r - p1.i) - (p2.r - p2.i)) < 0.1`,
				schema.TypeGalaxy, schema.TypeGalaxy)),
			Check: noCheck,
		},
	}
}

// Run executes one query with the given limits and returns its timing.
func Run(s *sqlengine.Session, q Query, truth pipeline.Truth, opt sqlengine.ExecOptions) Timing {
	sql, err := q.SQL(s)
	if err != nil {
		return Timing{ID: q.ID, Err: err}
	}
	res, err := s.Exec(sql, opt)
	if err != nil {
		return Timing{ID: q.ID, Err: err}
	}
	t := Timing{
		ID:      q.ID,
		Rows:    len(res.Rows),
		Elapsed: res.Elapsed,
		CPU:     res.CPU,
		Scanned: res.RowsScanned,
	}
	if q.Check != nil {
		t.Err = q.Check(res, truth)
	}
	return t
}

// RunAll executes the whole workload in Figure 13 order.
func RunAll(db *sqlengine.DB, truth pipeline.Truth, opt sqlengine.ExecOptions) []Timing {
	var out []Timing
	for _, q := range All() {
		s := sqlengine.NewSession(db)
		out = append(out, Run(s, q, truth, opt))
	}
	return out
}
