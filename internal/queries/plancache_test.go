package queries

import (
	"testing"

	"skyserver/internal/sqlengine"
)

// TestCachedAndFreshPlansAgree runs the Figure 13 workload three ways —
// compile-and-store (cache miss), re-execute from the cached parameterized
// plan (cache hit), and ExecOptions.DisablePlanCache (the un-parameterized
// pre-cache pipeline, mirroring the DisablePooling oracle) — and asserts
// identical result sets. A parameter bound to the wrong slot, a literal
// wrongly parameterized (TOP, ORDER BY ordinals), a stale plan surviving
// invalidation, or any divergence between interned-literal kernels and
// parameter broadcast kernels surfaces as a failing query here.
func TestCachedAndFreshPlansAgree(t *testing.T) {
	db, _ := survey(t)
	for _, q := range All() {
		q := q
		t.Run("Q"+q.ID, func(t *testing.T) {
			missSess := sqlengine.NewSession(db.DB)
			hitSess := sqlengine.NewSession(db.DB)
			freshSess := sqlengine.NewSession(db.DB)
			sql, err := q.SQL(missSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
			}
			for _, sess := range []*sqlengine.Session{hitSess, freshSess} {
				sqlAgain, err := q.SQL(sess)
				if err != nil {
					t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
				}
				if sql != sqlAgain {
					t.Fatalf("Q%s parameter lookups diverge:\n%s\nvs\n%s", q.ID, sql, sqlAgain)
				}
			}
			miss, err := missSess.Exec(sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("Q%s miss: %v", q.ID, err)
			}
			hit, err := hitSess.Exec(sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("Q%s hit: %v", q.ID, err)
			}
			fresh, err := freshSess.Exec(sql, sqlengine.ExecOptions{DisablePlanCache: true})
			if err != nil {
				t.Fatalf("Q%s fresh: %v", q.ID, err)
			}
			if fresh.PlanCacheHit {
				t.Fatalf("Q%s: DisablePlanCache run reported a cache hit", q.ID)
			}
			// Q20 is TOP 100 without ORDER BY over a parallel scan: which
			// 100 pairs surface is nondeterministic, so only the
			// cardinality is comparable.
			if q.ID == "20" {
				if len(miss.Rows) != len(fresh.Rows) || len(hit.Rows) != len(fresh.Rows) {
					t.Fatalf("Q20: row counts diverge: miss %d, hit %d, fresh %d",
						len(miss.Rows), len(hit.Rows), len(fresh.Rows))
				}
				return
			}
			compareResults(t, q.ID, miss, fresh)
			compareResults(t, q.ID, hit, fresh)
		})
	}
}

// TestPlanCacheHitRateOnWorkload asserts the cacheable single-SELECT
// queries of the workload actually hit on re-execution (the batches with
// variables, temp tables, and INTO targets legitimately never do).
func TestPlanCacheHitRateOnWorkload(t *testing.T) {
	db, _ := survey(t)
	for _, q := range All() {
		sess := sqlengine.NewSession(db.DB)
		sql, err := q.SQL(sess)
		if err != nil {
			t.Fatalf("Q%s: %v", q.ID, err)
		}
		if _, err := sess.Exec(sql, sqlengine.ExecOptions{}); err != nil {
			t.Fatalf("Q%s warm: %v", q.ID, err)
		}
		res, err := sess.Exec(sql, sqlengine.ExecOptions{})
		if err != nil {
			t.Fatalf("Q%s rerun: %v", q.ID, err)
		}
		switch q.ID {
		case "1", "14", "15A", "15B":
			// Q1 declares variables, Q14 uses ##ref, Q15A INTO ##results;
			// Q15B is cacheable (plain SELECT) — but huge either way.
			if q.ID != "15B" && res.PlanCacheHit {
				t.Errorf("Q%s: session-state batch must not hit the cache", q.ID)
			}
		default:
			if !res.PlanCacheHit {
				t.Errorf("Q%s: cacheable query missed the cache on re-execution", q.ID)
			}
		}
	}
}
