package queries

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"

	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/shard"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
)

// shardedSurvey builds (once per shard count) the same survey the
// unsharded fixture loads, but partitioned across n HTM-trixel shards
// with footprint-balanced ranges — the layout core.Open(-shards n)
// produces.
var (
	shardedMu  sync.Mutex
	shardedDBs = map[int]*schema.SkyDB{}
)

func shardedSurvey(t *testing.T, n int) *schema.SkyDB {
	t.Helper()
	shardedMu.Lock()
	defer shardedMu.Unlock()
	if db, ok := shardedDBs[n]; ok {
		return db
	}
	pcfg := pipeline.Config{Scale: 1.0 / 2000, SkipFrames: true}
	grid := pcfg.Footprint()
	raMax := grid.RA0 + float64(grid.FieldsPerStrip)*sky.FieldHeightDeg
	decMax := grid.Dec0 + float64(grid.Stripes)*sky.StripeWidthDeg
	plan := shard.ForRect(grid.RA0, grid.Dec0, raMax, decMax, n)
	fgs := make([]*storage.FileGroup, n)
	for i := range fgs {
		fgs[i] = storage.NewMemFileGroup(2, 2048)
	}
	sdbN, err := schema.BuildGroup(shard.New(plan, fgs))
	if err != nil {
		t.Fatalf("BuildGroup(%d shards): %v", n, err)
	}
	if _, err := load.New(sdbN).LoadSurvey(pcfg); err != nil {
		t.Fatalf("LoadSurvey(%d shards): %v", n, err)
	}
	if _, err := neighbors.Build(sdbN, neighbors.DefaultRadiusArcmin); err != nil {
		t.Fatalf("neighbors(%d shards): %v", n, err)
	}
	shardedDBs[n] = sdbN
	return sdbN
}

// TestShardedAndSingleAgree is the scatter-gather equivalence oracle:
// the whole Figure 13 workload against 2-, 4-, and 7-shard layouts must
// produce the same result sets as the unsharded baseline — rows
// byte-identical for ordered queries, multiset-identical (canonicalized
// floats) for unordered ones, cardinality for the nondeterministic Q20.
// Under -race this also exercises the cross-shard sink fan-in for
// races.
func TestShardedAndSingleAgree(t *testing.T) {
	base, _ := survey(t)
	for _, n := range []int{1, 2, 4, 7} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			var sdbN *schema.SkyDB
			if n == 1 {
				sdbN = base
			} else {
				sdbN = shardedSurvey(t, n)
			}
			for _, q := range All() {
				q := q
				t.Run("Q"+q.ID, func(t *testing.T) {
					baseSess := sqlengine.NewSession(base.DB)
					shardSess := sqlengine.NewSession(sdbN.DB)
					sql, err := q.SQL(baseSess)
					if err != nil {
						t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
					}
					alt, err := q.SQL(shardSess)
					if err != nil {
						t.Fatalf("Q%s sharded parameter lookup: %v", q.ID, err)
					}
					if alt != sql {
						t.Fatalf("Q%s parameter lookups diverge:\n%s\nvs\n%s", q.ID, sql, alt)
					}
					want, err := baseSess.Exec(sql, sqlengine.ExecOptions{})
					if err != nil {
						t.Fatalf("Q%s unsharded: %v", q.ID, err)
					}
					got, err := shardSess.Exec(sql, sqlengine.ExecOptions{})
					if err != nil {
						t.Fatalf("Q%s %d-shard: %v", q.ID, n, err)
					}
					if q.ID == "20" {
						if len(want.Rows) != len(got.Rows) {
							t.Fatalf("Q20: %d rows unsharded vs %d rows %d-shard", len(want.Rows), len(got.Rows), n)
						}
						return
					}
					compareStable(t, q.ID+" sharded-vs-single", want, got)
				})
			}
		})
	}
}

// TestShardedExplainRouting pins the planner's cover→shard pruning as it
// surfaces in EXPLAIN: a heap scan bounded to a sub-range of htmID shows
// Shards(k/N) with k < N, while a scan with no usable spatial bound
// fans out to Shards(N/N).
func TestShardedExplainRouting(t *testing.T) {
	sdbN := shardedSurvey(t, 4)
	plan := sdbN.DB.Shards().Plan()
	// A range spanning shards 1..2 only. Wide enough (> the planner's
	// dive cap) that the htmID index loses to the sharded heap scan;
	// psfMag_r keeps covering indexes out (it is in no index's columns).
	lo, hi := plan.Range(1).Lo, plan.Range(2).Hi-1
	sql := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID between %d and %d", lo, hi)
	res, err := sqlengine.NewSession(sdbN.DB).Exec(sql, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("pruned scan: %v", err)
	}
	pruned := regexp.MustCompile(`Shards\([123]/4\)`)
	if !pruned.MatchString(res.Plan) {
		t.Fatalf("pruned cone-range plan missing Shards(k/4), k<4:\n%s", res.Plan)
	}
	// Non-spatial sweep: no htmID bound, so the scan must fan out.
	res, err = sqlengine.NewSession(sdbN.DB).Exec("select sum(psfMag_r) from PhotoObj", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("full sweep: %v", err)
	}
	if !strings.Contains(res.Plan, "Shards(4/4)") {
		t.Fatalf("non-spatial sweep plan missing Shards(4/4):\n%s", res.Plan)
	}
}

// TestShardedClassFlips is the parameter-sniffing regression: one plan,
// cached from a binding that routes to a pruned shard subset (and so
// classifies interactive), must re-classify as batch when a later
// binding through the same cached plan fans out to every shard.
func TestShardedClassFlips(t *testing.T) {
	sdbN := shardedSurvey(t, 4)
	plan := sdbN.DB.Shards().Plan()
	sess := sqlengine.NewSession(sdbN.DB)

	narrow := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID between %d and %d",
		plan.Range(1).Lo, plan.Range(2).Hi-1)
	res, err := sess.Exec(narrow, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("narrow: %v", err)
	}
	if res.Class != sqlengine.ClassInteractive {
		t.Fatalf("2-of-4-shard scan classified %v, want interactive (plan:\n%s)", res.Class, res.Plan)
	}

	// Same statement shape — the literals normalize into parameters, so
	// this binds the plan cached above — but covering every shard (the
	// upper bound is the top of the legal depth-20 HTM ID space; the
	// last shard's Range().Hi is MaxUint64, which no int literal holds).
	wide := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID between %d and %d",
		0, uint64(16)<<40)
	res, err = sess.Exec(wide, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("wide: %v", err)
	}
	if !res.PlanCacheHit {
		t.Fatalf("wide binding missed the plan cache; the flip must happen on the cached plan")
	}
	if res.Class != sqlengine.ClassBatch {
		t.Fatalf("all-shard binding through the cached plan classified %v, want batch", res.Class)
	}

	// And back: the cached plan classifies each binding independently.
	res, err = sess.Exec(narrow, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("narrow again: %v", err)
	}
	if !res.PlanCacheHit || res.Class != sqlengine.ClassInteractive {
		t.Fatalf("re-narrowed binding: hit=%v class=%v, want cached interactive", res.PlanCacheHit, res.Class)
	}
}

// TestShardedRoutingCounters checks the /x/shards accounting end to end:
// a pruned scan increments spatialRouted and only the routed shards'
// counters; a full sweep increments fullRouted on every shard.
func TestShardedRoutingCounters(t *testing.T) {
	sdbN := shardedSurvey(t, 4)
	g := sdbN.DB.Shards()
	plan := g.Plan()
	before := g.Stats()

	sess := sqlengine.NewSession(sdbN.DB)
	narrow := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID between %d and %d",
		plan.Range(1).Lo, plan.Range(1).Hi-1)
	if _, err := sess.Exec(narrow, sqlengine.ExecOptions{}); err != nil {
		t.Fatalf("narrow: %v", err)
	}
	if _, err := sess.Exec("select sum(psfMag_r) from PhotoObj", sqlengine.ExecOptions{}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	after := g.Stats()
	if after.SpatialRouted <= before.SpatialRouted {
		t.Errorf("spatialRouted did not advance: %d -> %d", before.SpatialRouted, after.SpatialRouted)
	}
	if after.FullRouted <= before.FullRouted {
		t.Errorf("fullRouted did not advance: %d -> %d", before.FullRouted, after.FullRouted)
	}
	var touched int
	for i := range after.PerShard {
		if after.PerShard[i].QueriesRouted > before.PerShard[i].QueriesRouted {
			touched++
		}
	}
	if touched != 4 {
		t.Errorf("full sweep should touch all 4 shards' query counters; %d advanced", touched)
	}
}
