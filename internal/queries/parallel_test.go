package queries

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// TestParallelAndSerialPathsAgree runs the whole Figure 13 workload three
// ways — default parallel execution (per-worker partial aggregation, sort
// runs, top-k heaps), MaxConcurrency=1 (the serial plan the parallel
// operators must be equivalent to), and MaxConcurrency=1 with
// ForceRowExprs (the row-at-a-time semantic oracle) — and asserts
// identical result sets. Any partial/merge operator that loses a group,
// double-counts a row, or merges aggregate state incorrectly shows up as
// a failing query here. Run under -race this is also the data-race oracle
// for the per-worker sink machinery.
func TestParallelAndSerialPathsAgree(t *testing.T) {
	db, _ := survey(t)
	for _, q := range All() {
		q := q
		t.Run("Q"+q.ID, func(t *testing.T) {
			parSess := sqlengine.NewSession(db.DB)
			serSess := sqlengine.NewSession(db.DB)
			rowSess := sqlengine.NewSession(db.DB)
			sql, err := q.SQL(parSess)
			if err != nil {
				t.Fatalf("Q%s parameter lookup: %v", q.ID, err)
			}
			for name, sess := range map[string]*sqlengine.Session{"serial": serSess, "row": rowSess} {
				alt, err := q.SQL(sess)
				if err != nil {
					t.Fatalf("Q%s parameter lookup (%s): %v", q.ID, name, err)
				}
				if alt != sql {
					t.Fatalf("Q%s parameter lookups diverge (%s):\n%s\nvs\n%s", q.ID, name, sql, alt)
				}
			}
			par, err := parSess.Exec(sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("Q%s parallel: %v", q.ID, err)
			}
			ser, err := serSess.Exec(sql, sqlengine.ExecOptions{MaxConcurrency: 1})
			if err != nil {
				t.Fatalf("Q%s serial: %v", q.ID, err)
			}
			row, err := rowSess.Exec(sql, sqlengine.ExecOptions{MaxConcurrency: 1, ForceRowExprs: true})
			if err != nil {
				t.Fatalf("Q%s serial row fallback: %v", q.ID, err)
			}
			// Q20 is TOP 100 without ORDER BY over a parallel scan: which
			// 100 pairs surface is nondeterministic, so only the
			// cardinality is comparable.
			if q.ID == "20" {
				if len(par.Rows) != len(ser.Rows) || len(ser.Rows) != len(row.Rows) {
					t.Fatalf("Q20: row counts diverge: %d parallel vs %d serial vs %d row",
						len(par.Rows), len(ser.Rows), len(row.Rows))
				}
				return
			}
			compareStable(t, q.ID+" parallel-vs-serial", par, ser)
			compareStable(t, q.ID+" serial-vs-row", ser, row)
		})
	}
}

// compareStable compares two results as multisets of rows, like
// compareResults, but canonicalizes floats to 10 significant digits: a
// per-worker partial SUM/AVG adds the same values in a different grouping
// than the serial plan, and float addition is not associative in the last
// ulp. Everything else (ints, strings, counts) must match exactly.
func compareStable(t *testing.T, id string, a, b *sqlengine.Result) {
	t.Helper()
	if len(a.Cols) != len(b.Cols) {
		t.Fatalf("Q%s: column counts diverge: %d vs %d", id, len(a.Cols), len(b.Cols))
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			t.Fatalf("Q%s: column %d name %q vs %q", id, i, a.Cols[i], b.Cols[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("Q%s: row counts diverge: %d vs %d", id, len(a.Rows), len(b.Rows))
	}
	ca := canonicalizeStable(a.Rows)
	cb := canonicalizeStable(b.Rows)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("Q%s: result multisets diverge at sorted position %d:\n%s\nvs\n%s",
				id, i, ca[i], cb[i])
		}
	}
}

func canonicalizeStable(rows []val.Row) []string {
	out := make([]string, len(rows))
	var sb strings.Builder
	for i, r := range rows {
		sb.Reset()
		for _, v := range r {
			if v.K == val.KindFloat {
				fmt.Fprintf(&sb, "%.10g|", v.F)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// TestParallelOrderByByteIdentical pins the stronger guarantee the sort
// and top-k operators make beyond multiset equality: because run merging
// and top-k selection order rows by the ORDER BY keys *and then the full
// row* (rowLess's total order), an ordered query's output sequence is
// deterministic — byte-identical between parallel and serial execution
// and across repeated parallel runs, even though the scan delivers rows
// in nondeterministic morsel order.
func TestParallelOrderByByteIdentical(t *testing.T) {
	db, _ := survey(t)
	queries := []struct {
		name, sql string
	}{
		{"GroupByOrdered", "select floor(r) as bin, count(*) as n from PhotoObj group by floor(r) order by bin"},
		{"TopKOrdered", "select top 7 objID, r from PhotoObj order by r"},
		{"TopKDescOrdered", "select top 5 objID, g - r as gr from Galaxy order by gr desc"},
		{"SortAll", "select objID from SpecObj order by z desc"},
	}
	for _, q := range queries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			ser, err := sqlengine.NewSession(db.DB).Exec(q.sql, sqlengine.ExecOptions{MaxConcurrency: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			want := renderOrdered(ser.Rows)
			for run := 0; run < 3; run++ {
				par, err := sqlengine.NewSession(db.DB).Exec(q.sql, sqlengine.ExecOptions{})
				if err != nil {
					t.Fatalf("parallel run %d: %v", run, err)
				}
				got := renderOrdered(par.Rows)
				if got != want {
					t.Fatalf("parallel run %d output diverges from serial:\n%s\nvs\n%s", run, got, want)
				}
			}
		})
	}
}

func renderOrdered(rows []val.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%v\n", r)
	}
	return sb.String()
}

// TestParallelExplainShapes pins the operator names the parallel plan
// shapes render under EXPLAIN: partial+merge aggregation, the sort node's
// run count, and TOP n over ORDER BY fused into a bounded top-k.
func TestParallelExplainShapes(t *testing.T) {
	db, _ := survey(t)
	cases := []struct {
		name, sql, want string
	}{
		{"PartialAgg", "select floor(r) as bin, count(*) as n from PhotoObj group by floor(r)", "PartialAgg→MergeAgg"},
		{"SortRuns", "select objID from SpecObj order by z", "runs="},
		{"SortName", "select objID from SpecObj order by z", "Sort("},
		{"TopK", "select top 7 objID, r from PhotoObj order by r", "TopK(7"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := sqlengine.NewSession(db.DB).Exec(c.sql, sqlengine.ExecOptions{})
			if err != nil {
				t.Fatalf("exec: %v", err)
			}
			if !strings.Contains(res.Plan, c.want) {
				t.Fatalf("plan missing %q:\n%s", c.want, res.Plan)
			}
		})
	}
	// TOP without ORDER BY must stay a plain Top node, not a TopK.
	res, err := sqlengine.NewSession(db.DB).Exec("select top 3 objID from PhotoObj", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if strings.Contains(res.Plan, "TopK(") {
		t.Fatalf("TOP without ORDER BY should not plan a TopK:\n%s", res.Plan)
	}
}
