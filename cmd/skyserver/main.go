// Command skyserver builds a synthetic sky survey and serves the SkyServer
// web interface: the SQL search page, the object explorer, the pan-zoom
// cutout service, the famous-places gallery, and the schema browser.
//
//	skyserver -addr :8008 -scale 0.0025 -public
//
// With -public the §4 limits apply (1,000 rows / 30 seconds per query).
// The access log (-accesslog) is written in the format internal/traffic
// analyzes.
//
// The process shuts down gracefully: on SIGINT/SIGTERM readiness flips off
// (new queries get 503 + Retry-After, /x/health reports draining), in-flight
// queries finish up to -drain-timeout, then the storage volumes and scan
// pool close. The -chaos-* flags wrap every volume with seeded fault
// injection (internal/chaos) — a dev mode for watching the retry, checksum,
// and recovery machinery under load; never enable it on real data you care
// about timing, every read may be delayed or retried.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"skyserver/internal/chaos"
	"skyserver/internal/core"
	"skyserver/internal/storage"
	"skyserver/internal/web"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8008", "listen address")
	scale := flag.Float64("scale", 1.0/400, "survey scale as a fraction of the 14M-object EDR")
	seed := flag.Int64("seed", 20020603, "survey seed")
	public := flag.Bool("public", true, "enforce the public limits (1,000 rows / 30s)")
	accessLog := flag.String("accesslog", "", "write the access log to this file")
	scanWorkers := flag.Int("scanworkers", 0, "persistent scan-worker pool size (0 = auto)")
	interactiveSlots := flag.Int("interactive-slots", 0, "reserved interactive (point-lookup) query slots (0 = auto)")
	batchSlots := flag.Int("batch-slots", 0, "batch (analytic-scan) query slots (0 = auto)")
	queueDepthInteractive := flag.Int("queuedepth-interactive", 0, "interactive admission queue depth before 503s (0 = default)")
	queueDepthBatch := flag.Int("queuedepth-batch", 0, "batch admission queue depth before 503s (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = the public 30s default)")
	resultCacheBytes := flag.Int("resultcache-bytes", 0, "result-cache byte budget (0 = 64MB default, negative disables)")
	resultCacheMaxEntry := flag.Int("resultcache-maxentry", 0, "largest cacheable serialized result in bytes (0 = 1MB default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight queries may finish after SIGTERM before connections close hard")
	drainGrace := flag.Duration("drain-grace", 250*time.Millisecond, "window after readiness flips off during which late arrivals still get well-formed 503s")
	chaosRate := flag.Float64("chaos-rate", 0, "dev mode: inject transient read faults at this probability (bit flips at half of it) on every volume")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic chaos fault schedule")
	chaosLatency := flag.Duration("chaos-latency", 0, "dev mode: delay every physical read by up to this duration")
	cachePages := flag.Int("cachepages", 0, "page-cache size in 8 KB pages (0 = 64K pages / 512 MB default)")
	shards := flag.Int("shards", 1, "number of HTM-trixel shards heap pages are partitioned into (1 = unsharded)")
	userQueueQuota := flag.Int("user-queue-quota", 0, "max queued batch queries per user before 503s (0 = default)")
	jobsDir := flag.String("jobs-dir", "", "directory for persisted batch-job results (empty = temp dir, lost on exit)")
	jobsTTL := flag.Duration("jobs-ttl", 0, "how long finished job results stay fetchable (0 = 1h default)")
	jobsBytes := flag.Int64("jobs-bytes", 0, "byte budget for persisted job results before oldest-first eviction (0 = 256MB default)")
	jobsMaxPerUser := flag.Int("jobs-max-per-user", 0, "max unfinished jobs per user (0 = 16 default)")
	flag.Parse()

	cfg := core.Config{Scale: *scale, Seed: *seed, ScanWorkers: *scanWorkers, CachePages: *cachePages, Shards: *shards}
	if *chaosRate > 0 || *chaosLatency > 0 {
		log.Printf("CHAOS MODE: transient rate %g, corrupt rate %g, latency up to %s, seed %d",
			*chaosRate, *chaosRate/2, *chaosLatency, *chaosSeed)
		if *cachePages == 0 {
			// With the default cache the whole survey stays resident and
			// reads never reach the fault layer; chaos mode is pointless
			// unless the cache is small.
			cfg.CachePages = 256
			log.Printf("chaos: page cache shrunk to %d pages so reads hit the fault layer (override with -cachepages)", cfg.CachePages)
		}
		cfg.WrapVolume = func(shard, stripe int, v storage.Volume) storage.Volume {
			return chaos.NewFaultVolume(v, chaos.Config{
				Seed:          *chaosSeed + uint64(shard*64+stripe),
				TransientRate: *chaosRate,
				CorruptRate:   *chaosRate / 2,
				Latency:       *chaosLatency,
			})
		}
	}

	log.Printf("building synthetic survey at scale 1/%.0f …", 1 / *scale)
	s, err := core.Open(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	log.Printf("loaded %d photo objects, %d spectra", s.DB().PhotoObj.Rows(), s.DB().SpecObj.Rows())

	opt := web.Options{
		Public:                *public,
		Timeout:               *timeout,
		InteractiveSlots:      *interactiveSlots,
		BatchSlots:            *batchSlots,
		InteractiveQueueDepth: *queueDepthInteractive,
		BatchQueueDepth:       *queueDepthBatch,
		ResultCacheBytes:      *resultCacheBytes,
		ResultCacheMaxEntry:   *resultCacheMaxEntry,
		UserQueueQuota:        *userQueueQuota,
		JobsDir:               *jobsDir,
		JobsTTL:               *jobsTTL,
		JobsBytes:             *jobsBytes,
		JobsMaxPerUser:        *jobsMaxPerUser,
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		opt.AccessLog = f
	}

	ws := s.Web(opt)
	defer ws.Close()
	srv := &http.Server{Addr: *addr, Handler: ws.Handler()}
	log.Printf("serving on %s (public=%v, drain timeout %s)", *addr, *public, *drainTimeout)
	fmt.Printf("open http://localhost%s/ — try /en/tools/places/ or /api/v1/query?format=csv&cmd=select+top+5+objID,ra,dec+from+Galaxy\n", *addr)
	if err := ws.ServeGraceful(srv, nil, *drainGrace, *drainTimeout); err != nil {
		return err
	}
	log.Printf("drained; closing storage")
	return nil
}
