// Command skyserver builds a synthetic sky survey and serves the SkyServer
// web interface: the SQL search page, the object explorer, the pan-zoom
// cutout service, the famous-places gallery, and the schema browser.
//
//	skyserver -addr :8008 -scale 0.0025 -public
//
// With -public the §4 limits apply (1,000 rows / 30 seconds per query).
// The access log (-accesslog) is written in the format internal/traffic analyzes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"skyserver/internal/core"
	"skyserver/internal/web"
)

func main() {
	addr := flag.String("addr", ":8008", "listen address")
	scale := flag.Float64("scale", 1.0/400, "survey scale as a fraction of the 14M-object EDR")
	seed := flag.Int64("seed", 20020603, "survey seed")
	public := flag.Bool("public", true, "enforce the public limits (1,000 rows / 30s)")
	accessLog := flag.String("accesslog", "", "write the access log to this file")
	scanWorkers := flag.Int("scanworkers", 0, "persistent scan-worker pool size (0 = auto)")
	interactiveSlots := flag.Int("interactive-slots", 0, "reserved interactive (point-lookup) query slots (0 = auto)")
	batchSlots := flag.Int("batch-slots", 0, "batch (analytic-scan) query slots (0 = auto)")
	queueDepthInteractive := flag.Int("queuedepth-interactive", 0, "interactive admission queue depth before 503s (0 = default)")
	queueDepthBatch := flag.Int("queuedepth-batch", 0, "batch admission queue depth before 503s (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = the public 30s default)")
	resultCacheBytes := flag.Int("resultcache-bytes", 0, "result-cache byte budget (0 = 64MB default, negative disables)")
	resultCacheMaxEntry := flag.Int("resultcache-maxentry", 0, "largest cacheable serialized result in bytes (0 = 1MB default)")
	flag.Parse()

	log.Printf("building synthetic survey at scale 1/%.0f …", 1 / *scale)
	s, err := core.Open(core.Config{Scale: *scale, Seed: *seed, ScanWorkers: *scanWorkers})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	log.Printf("loaded %d photo objects, %d spectra", s.DB().PhotoObj.Rows(), s.DB().SpecObj.Rows())

	opt := web.Options{
		Public:                *public,
		Timeout:               *timeout,
		InteractiveSlots:      *interactiveSlots,
		BatchSlots:            *batchSlots,
		InteractiveQueueDepth: *queueDepthInteractive,
		BatchQueueDepth:       *queueDepthBatch,
		ResultCacheBytes:      *resultCacheBytes,
		ResultCacheMaxEntry:   *resultCacheMaxEntry,
	}
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opt.AccessLog = f
	}
	log.Printf("serving on %s (public=%v)", *addr, *public)
	fmt.Printf("open http://localhost%s/ — try /en/tools/places/ or /x/sql?format=csv&cmd=select+top+5+objID,ra,dec+from+Galaxy\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler(opt)))
}
