// Command skyquery is the text mode of SkyServerQA (§4): a command-line
// SQL tool against a freshly built synthetic survey. One-shot:
//
//	skyquery -scale 0.0025 -format csv "select top 5 objID, ra, dec from Galaxy"
//
// or interactive (reads statements terminated by 'go' or a blank line):
//
//	skyquery -i
//
// -explain prints the query plan instead of running the query; -stats
// prints the execution-statistics line the SkyServerQA status window shows.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"skyserver/internal/core"
	"skyserver/internal/sqlengine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run isolates the real work so every error path unwinds through the
// deferred SkyServer close instead of leaking volumes via log.Fatal.
func run() error {
	scale := flag.Float64("scale", 1.0/1000, "survey scale as a fraction of the 14M-object EDR")
	seed := flag.Int64("seed", 20020603, "survey seed")
	shards := flag.Int("shards", 1, "partition storage across N HTM-trixel shards")
	format := flag.String("format", "table", "output: table, csv")
	explain := flag.Bool("explain", false, "print the plan instead of executing")
	stats := flag.Bool("stats", true, "print execution statistics")
	interactive := flag.Bool("i", false, "interactive mode")
	flag.Parse()

	// Reject bad usage before paying for (and having to unwind) a survey
	// build.
	if !*interactive && strings.TrimSpace(strings.Join(flag.Args(), " ")) == "" {
		fmt.Fprintln(os.Stderr, "usage: skyquery [flags] \"select ...\"   (or -i for interactive)")
		os.Exit(2)
	}

	log.Printf("building synthetic survey at scale 1/%.0f …", 1 / *scale)
	s, err := core.Open(core.Config{Scale: *scale, Seed: *seed, Shards: *shards, SkipFrames: true})
	if err != nil {
		return err
	}
	defer s.Close()
	sess := s.Session()

	runOne := func(sql string) {
		if *explain {
			plan, err := sess.Explain(sql)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Print(plan)
			return
		}
		res, err := sess.Exec(sql, sqlengine.ExecOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		printResult(res, *format)
		if *stats {
			fmt.Printf("(%d rows, %.3fs elapsed, %.3fs cpu, %d rows scanned)\n",
				len(res.Rows), res.Elapsed.Seconds(), res.CPU.Seconds(), res.RowsScanned)
		}
	}

	if !*interactive {
		runOne(strings.Join(flag.Args(), " "))
		return nil
	}

	fmt.Println("skyquery interactive — end a batch with 'go' or a blank line; 'quit' exits.")
	sc := bufio.NewScanner(os.Stdin)
	var batch []string
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(strings.ToLower(line))
		if trimmed == "quit" || trimmed == "exit" {
			break
		}
		if trimmed == "go" || trimmed == "" {
			if len(batch) > 0 {
				runOne(strings.Join(batch, "\n"))
				batch = batch[:0]
			}
			continue
		}
		batch = append(batch, line)
	}
	return nil
}

func printResult(res *sqlengine.Result, format string) {
	if format == "csv" {
		fmt.Println(strings.Join(res.Cols, ","))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, ","))
		}
		return
	}
	// Fixed-width table.
	widths := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	for i, c := range res.Cols {
		fmt.Printf("%-*s  ", widths[i], c)
		_ = i
	}
	fmt.Println()
	for i := range res.Cols {
		fmt.Printf("%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Println()
	for _, row := range cells {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
}
