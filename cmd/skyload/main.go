// Command skyload is the load-pipeline administration tool of §9.4: it
// generates a synthetic survey as CSV files (the pipeline's output format),
// loads them through journaled DTS-style steps with integrity checking,
// shows the loadEvents journal, and demonstrates UNDO of a failed step.
//
//	skyload -dir /tmp/csv -scale 0.0005 gen      # pipeline → CSV files
//	skyload -dir /tmp/csv load                   # CSV → database, journaled
//	skyload -dir /tmp/csv demo-undo              # inject a bad file, load, undo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"skyserver/internal/load"
	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/shard"
	"skyserver/internal/sky"
	"skyserver/internal/storage"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run isolates the real work so every error path unwinds through the
// deferred FileGroup close instead of leaking volumes via log.Fatal.
func run() error {
	dir := flag.String("dir", "", "CSV directory")
	scale := flag.Float64("scale", 1.0/2000, "survey scale as a fraction of the 14M-object EDR")
	seed := flag.Int64("seed", 20020603, "survey seed")
	shards := flag.Int("shards", 1, "number of HTM-trixel shards heap pages are partitioned into (1 = unsharded)")
	flag.Parse()
	if *dir == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skyload -dir DIR [gen|load|demo-undo]")
		os.Exit(2)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	if *shards < 1 {
		*shards = 1
	}
	plan := shard.EqualSplit(*shards)
	if *shards > 1 {
		grid := pipeline.Config{Scale: *scale, Seed: *seed}.Footprint()
		raMax := grid.RA0 + float64(grid.FieldsPerStrip)*sky.FieldHeightDeg
		decMax := grid.Dec0 + float64(grid.Stripes)*sky.StripeWidthDeg
		plan = shard.ForRect(grid.RA0, grid.Dec0, raMax, decMax, *shards)
	}
	fgs := make([]*storage.FileGroup, *shards)
	for i := range fgs {
		fgs[i] = storage.NewMemFileGroup(4, 1<<14 / *shards)
	}
	group := shard.New(plan, fgs)
	defer group.Close()
	sdb, err := schema.BuildGroup(group)
	if err != nil {
		return err
	}

	switch flag.Arg(0) {
	case "gen":
		stats, paths, err := load.WriteCSVSurvey(pipeline.Config{Scale: *scale, Seed: *seed}, sdb, *dir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d CSV files:\n", len(paths))
		for table, path := range paths {
			fmt.Printf("  %-15s %8d rows  %s\n", table, stats.RowCounts[table], path)
		}
		return nil

	case "load":
		l := load.New(sdb)
		events, err := load.LoadCSVDir(l, sdb, *dir)
		if err != nil {
			return fmt.Errorf("load failed after %d steps: %w", len(events), err)
		}
		if err := printJournal(l); err != nil {
			return err
		}
		fmt.Printf("loaded %d photo objects\n", sdb.PhotoObj.Rows())
		return nil

	case "demo-undo":
		// The §9.4 operations story: a bad file fails its step mid-way,
		// the journal shows it, UNDO backs it out.
		l := load.New(sdb)
		good := filepath.Join(*dir, "Plate.csv")
		if err := os.WriteFile(good, []byte(
			"plateID,mjd,ra,dec,nFibers,loadTime\n266,52000,185,0,600,0\n267,52003,186,0,600,0\n"), 0o644); err != nil {
			return err
		}
		src, err := load.NewCSVSource(sdb, "Plate", good)
		if err != nil {
			return err
		}
		if _, err := l.RunStep(src); err != nil {
			return err
		}
		bad := filepath.Join(*dir, "Plate_bad.csv")
		if err := os.WriteFile(bad, []byte(
			"plateID,mjd,ra,dec,nFibers,loadTime\n268,52006,187,0,600,0\n269,not-a-number,188,0,600,0\n"), 0o644); err != nil {
			return err
		}
		src2, err := load.NewCSVSource(sdb, "Plate", bad)
		if err != nil {
			return err
		}
		badEvent, err := l.RunStep(src2)
		fmt.Printf("bad step %d failed as expected: %v\n", badEvent, err)
		fmt.Printf("plates after failure: %d (partial rows present)\n", sdb.Plate.Rows())
		removed, err := l.Undo(badEvent)
		if err != nil {
			return err
		}
		fmt.Printf("UNDO removed %d rows; plates now: %d\n", removed, sdb.Plate.Rows())
		return printJournal(l)

	default:
		fmt.Fprintln(os.Stderr, "unknown subcommand", flag.Arg(0))
		os.Exit(2)
		return nil
	}
}

func printJournal(l *load.Loader) error {
	events, err := l.Events()
	if err != nil {
		return err
	}
	fmt.Println("loadEvents journal:")
	fmt.Printf("  %-4s %-15s %-10s %10s %10s  %s\n", "id", "table", "status", "srcRows", "inserted", "source")
	for _, e := range events {
		fmt.Printf("  %-4d %-15s %-10s %10d %10d  %s\n",
			e.ID, e.Table, e.Status, e.SourceRows, e.InsertedRows, e.Source)
	}
	return nil
}
