// Command skybench regenerates every table and figure of the SkyServer
// paper's evaluation as text reports:
//
//	skybench -exp table1     Table 1: records and bytes per table
//	skybench -exp fig5       Figure 5: monthly hits / page views / sessions
//	skybench -exp plans      Figures 10–12: the printed query plans
//	skybench -exp fig12      Figure 12 ablation: Q15B with vs without its index
//	skybench -exp fig13      Figure 13: CPU and elapsed time per query
//	skybench -exp fig15      Figure 15: scan MB/s vs disk configuration
//	skybench -exp warmcold   §11/§12: warm/cold index scans, color-cut scan
//	skybench -exp neighbors  §9.1.1: neighbors build rate and density
//	skybench -exp load       §9.4: load pipeline throughput
//	skybench -exp personal   §10: personal SkyServer subset
//	skybench -exp all        everything above
//
// -scale sets the survey size as a fraction of the 14M-object EDR.
//
// Two additional experiments implement the CI benchmark-regression gate
// over raw `go test -bench` output (no server is built for these):
//
//	skybench -exp benchbaseline -bench bench.txt -out BENCH_BASELINE.json
//	skybench -exp benchdiff -baseline BENCH_BASELINE.json -bench bench.txt
//
// benchdiff exits non-zero when a benchmark regresses more than 25% in
// ns/op or by any amount in allocs/op. With -allocsonly the ns/op check
// is skipped entirely and only allocation counts gate — the mode for
// shared/noisy runners where wall-clock is meaningless but allocs/op is
// still exact.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"skyserver/internal/core"
	"skyserver/internal/experiments"
	"skyserver/internal/traffic"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 fig5 plans fig12 fig13 fig15 warmcold neighbors load personal all benchbaseline benchdiff")
	scale := flag.Float64("scale", 1.0/400, "survey scale as a fraction of the 14M-object EDR")
	seed := flag.Int64("seed", 20020603, "survey seed")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "benchdiff: baseline JSON to compare against")
	bench := flag.String("bench", "", "benchbaseline/benchdiff: raw `go test -bench` output file")
	out := flag.String("out", "BENCH_BASELINE.json", "benchbaseline: output JSON path")
	allocsOnly := flag.Bool("allocsonly", false, "benchdiff: gate only allocs/op, ignore ns/op (for noisy runners)")
	flag.Parse()

	var err error
	switch *exp {
	case "benchbaseline":
		err = writeBaseline(*bench, *out)
	case "benchdiff":
		err = diffBaseline(*baseline, *bench, *allocsOnly)
	default:
		err = run(*exp, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, seed int64) error {
	needsServer := map[string]bool{
		"table1": true, "plans": true, "fig13": true,
		"warmcold": true, "personal": true, "all": true,
	}
	var s *core.SkyServer
	if needsServer[exp] {
		fmt.Printf("building synthetic survey at scale 1/%.0f …\n", 1/scale)
		start := time.Now()
		var err error
		s, err = core.Open(core.Config{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
		defer s.Close()
		fmt.Printf("loaded %d photo objects in %.1fs\n\n", s.DB().PhotoObj.Rows(), time.Since(start).Seconds())
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			return reportTable1(s)
		case "fig5":
			return reportFig5()
		case "plans":
			return reportPlans(s)
		case "fig12":
			return reportFig12(scale, seed)
		case "fig13":
			return reportFig13(s)
		case "fig15":
			return reportFig15()
		case "warmcold":
			return reportWarmCold(s)
		case "neighbors":
			return reportNeighbors(scale, seed)
		case "load":
			return reportLoad(scale, seed)
		case "personal":
			return reportPersonal(s)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{"table1", "fig5", "plans", "fig12", "fig13", "fig15", "warmcold", "neighbors", "load", "personal"} {
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

func reportTable1(s *core.SkyServer) error {
	fmt.Println("== Table 1: count of records and bytes in major tables ==")
	fmt.Printf("%-15s %12s %12s %12s | %8s %8s\n", "Table", "Records", "Bytes", "IdxBytes", "paper", "paper")
	for _, r := range experiments.Table1(s) {
		fmt.Printf("%-15s %12d %12s %12s | %8s %8s\n",
			r.Name, r.Rows, human(r.DataBytes), human(r.IndexBytes), r.PaperRows, r.PaperBytes)
	}
	return nil
}

func reportFig5(args ...string) error {
	fmt.Println("== Figure 5: site traffic, June..December 2001 ==")
	rep, err := experiments.Fig5(traffic.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %12s %12s %10s\n", "month", "hits", "pageViews", "sessions")
	for _, m := range rep.MonthlySeries() {
		fmt.Printf("%-9s %12d %12d %10d\n", m.Day.Format("2006-01"), m.Hits, m.Pages, m.Sessions)
	}
	fmt.Printf("%-9s %12d %12d %10d   (paper: ~2.5M hits, ~1M pages, ~70k sessions)\n",
		"total", rep.Hits, rep.Pages, rep.Sessions)
	fmt.Printf("crawler hits: %.0f%% (paper ~30%%)   jp pages: %.1f%% (paper ~4%%)   de pages: %.1f%% (paper ~3%%)   edu pages: %.1f%% (paper ~8%%)\n",
		100*float64(rep.CrawlerHits)/float64(rep.Hits),
		100*float64(rep.LangPages["jp"])/float64(rep.Pages),
		100*float64(rep.LangPages["de"])/float64(rep.Pages),
		100*float64(rep.EduPages)/float64(rep.Pages))
	return nil
}

func reportPlans(s *core.SkyServer) error {
	fmt.Println("== Figures 10-12: query plans ==")
	plans, err := experiments.Plans(s)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(plans))
	for k := range plans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("-- %s --\n%s\n", k, plans[k])
	}
	return nil
}

func reportFig12(scale float64, seed int64) error {
	fmt.Println("== Figure 12 ablation: Q15B with vs without the covering index ==")
	fmt.Println("(cold runs on the paper's 4-disk model: the gap is an I/O story)")
	r, err := experiments.Fig12(experiments.Fig12Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("with ix_PhotoObj_run_camcol_field:    %10.3fs  (%d pairs)   paper: 55s\n", r.WithIndex.Seconds(), r.RowsWith)
	fmt.Printf("without (nested loop of table scans): %10.3fs  (%d pairs)   paper: ~600s\n", r.WithoutIndex.Seconds(), r.RowsWithout)
	fmt.Printf("speedup from the index: %.1fx (paper: ~11x)\n", r.WithoutIndex.Seconds()/r.WithIndex.Seconds())
	return nil
}

func reportFig13(s *core.SkyServer) error {
	fmt.Println("== Figure 13: the 22-query workload (CPU and elapsed seconds) ==")
	fmt.Printf("%-5s %10s %12s %12s %12s  %s\n", "query", "rows", "cpu(s)", "elapsed(s)", "rowsScanned", "status")
	for _, tm := range experiments.Fig13(s) {
		status := "ok"
		if tm.Err != nil {
			status = tm.Err.Error()
		}
		fmt.Printf("%-5s %10d %12.3f %12.3f %12d  %s\n",
			"Q"+tm.ID, tm.Rows, tm.CPU.Seconds(), tm.Elapsed.Seconds(), tm.Scanned, status)
	}
	return nil
}

func reportFig15() error {
	fmt.Println("== Figure 15: sequential scan MB/s vs disk configuration (model units) ==")
	fmt.Println("model: 40 MB/s disks, 119 MB/s controllers (3 disks each), 220/500 MB/s buses")
	points, err := experiments.Fig15(experiments.Fig15Config{})
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %12s %12s   %s\n", "disks", "raw MB/s", "sql MB/s", "paper raw/sql")
	paper := map[int][2]string{
		1: {"40", "40"}, 3: {"119", "119"}, 6: {"213", "200"},
		9: {"320", "310"}, 12: {"430", "331"},
	}
	for _, p := range points {
		pp := paper[p.Disks]
		fmt.Printf("%-7d %12.0f %12.0f   %s/%s\n", p.Disks, p.RawMBps, p.SQLMBps, pp[0], pp[1])
	}
	return nil
}

func reportWarmCold(s *core.SkyServer) error {
	fmt.Println("== §11/§12 prose: warm vs cold scans ==")
	r, err := experiments.WarmCold(s)
	if err != nil {
		return err
	}
	fmt.Printf("color-cut scan cold (cache dropped): %8.1f ms, %s read   (paper: 17s cold index scan at 14M rows)\n",
		float64(r.ColdScan.Microseconds())/1000, human(r.ColorCutBytes))
	fmt.Printf("color-cut scan warm (cache hot):     %8.1f ms              (paper: 7s warm)\n",
		float64(r.WarmScan.Microseconds())/1000)
	fmt.Printf("covered index aggregate:             %8.1f ms              (memory-resident B-tree)\n",
		float64(r.IndexScan.Microseconds())/1000)
	fmt.Printf("rows scanned by the color cut: %d\n", r.ColorCutRows)
	return nil
}

func reportNeighbors(scale float64, seed int64) error {
	fmt.Println("== §9.1.1: the Neighbors materialized view ==")
	r, err := experiments.Neighbors(scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("built %d neighbor pairs for %d objects in %.2fs — %.1f per object (paper: ~10 at full density)\n",
		r.Rows, r.PhotoRows, r.BuildTime.Seconds(), r.PerObject)
	return nil
}

func reportLoad(scale float64, seed int64) error {
	fmt.Println("== §9.4: load pipeline throughput ==")
	r, err := experiments.Load(scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d rows (%s) in %.2fs — %.2f GB/hour, %.0f rows/s (paper: ~5 GB/hour)\n",
		r.Rows, human(r.Bytes), r.Elapsed.Seconds(), r.GBPerHour, r.RowsPerSec)
	return nil
}

func reportPersonal(s *core.SkyServer) error {
	fmt.Println("== §10: the personal SkyServer ==")
	r, err := experiments.Personal(s, 184.5, 185.5, -1.0, 0.0)
	if err != nil {
		return err
	}
	fmt.Printf("subset %d of %d objects (%.1f%%); Query 1 inside the subset: %d galaxies (paper: 19)\n",
		r.SubsetRows, r.ParentRows, 100*r.Fraction, r.Q1Galaxies)
	return nil
}

func human(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

var _ = strings.TrimSpace
