package main

// The benchmark-regression gate: a small comparator over `go test -bench`
// output, standing in for benchstat so CI needs nothing beyond the Go
// toolchain. `-exp benchbaseline` distills raw bench output (several
// -count runs) into BENCH_BASELINE.json; `-exp benchdiff` compares a new
// raw run against the checked-in baseline and fails (exit 1 via error) on
// a >25% ns/op regression or ANY allocs/op growth — allocation counts are
// machine-independent, so they gate exactly, while wall-clock gets the
// noise allowance.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// NsRegressionLimit is the allowed ns/op growth factor before the gate
// fails (CI runners are noisy; allocations gate exactly).
const NsRegressionLimit = 1.25

// BenchBaseline is the checked-in BENCH_BASELINE.json document.
type BenchBaseline struct {
	// Note records where the numbers came from; informational only.
	Note       string                 `json:"note"`
	Go         string                 `json:"go"`
	Benchmarks map[string]BenchSample `json:"benchmarks"`
}

// BenchSample is one benchmark's medians.
type BenchSample struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFig13Queries/Q8-8   100   222909 ns/op   6432 B/op   64 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// parseBench reads raw `go test -bench` output and returns per-benchmark
// medians over however many -count repetitions the run held.
func parseBench(r io.Reader) (map[string]BenchSample, error) {
	ns := map[string][]float64{}
	allocs := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		ns[name] = append(ns[name], v)
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			a, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			allocs[name] = append(allocs[name], a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	out := make(map[string]BenchSample, len(ns))
	for name, vs := range ns {
		s := BenchSample{NsOp: median(vs)}
		if as := allocs[name]; len(as) > 0 {
			s.AllocsOp = median(as)
		}
		out[name] = s
	}
	return out, nil
}

func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// writeBaseline distills a raw bench run into the baseline JSON.
func writeBaseline(benchPath, outPath string) error {
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := parseBench(f)
	if err != nil {
		return err
	}
	doc := BenchBaseline{
		Note:       "medians of `go test -bench <gate set> -benchtime 20x -count 5`; regenerate with skybench -exp benchbaseline",
		Go:         runtime.Version(),
		Benchmarks: samples,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d benchmarks\n", outPath, len(samples))
	return nil
}

// diffBaseline compares a new raw bench run against the baseline and
// returns an error when the gate fails. With allocsOnly the ns/op branch
// is skipped: only allocation counts (machine-independent, exact) gate.
func diffBaseline(baselinePath, benchPath string, allocsOnly bool) error {
	bb, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base BenchBaseline
	if err := json.Unmarshal(bb, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	f, err := os.Open(benchPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cur, err := parseBench(f)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base.Benchmarks))
	var failures []string
	for name := range base.Benchmarks {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		} else {
			// A baseline benchmark absent from the run means the gate's
			// coverage silently shrank (renamed bench, narrowed -bench
			// pattern) — fail rather than pass vacuously.
			failures = append(failures, fmt.Sprintf(
				"%s: in baseline but missing from the new run", name))
		}
	}
	sort.Strings(names)
	sort.Strings(failures)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", baselinePath, benchPath)
	}
	fmt.Printf("%-44s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δ", "base alloc", "new alloc", "gate")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur[name]
		ratio := 0.0
		if b.NsOp > 0 {
			ratio = c.NsOp / b.NsOp
		}
		verdict := "ok"
		if !allocsOnly && ratio > NsRegressionLimit {
			verdict = "FAIL ns/op"
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (%.2fx > %.2fx limit)", name, b.NsOp, c.NsOp, ratio, NsRegressionLimit))
		}
		if c.AllocsOp > b.AllocsOp {
			verdict = strings.TrimPrefix(verdict+" FAIL allocs", "ok ")
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.0f -> %.0f (any regression fails)", name, b.AllocsOp, c.AllocsOp))
		}
		fmt.Printf("%-44s %14.0f %14.0f %7.2fx %10.0f %10.0f %8s\n",
			name, b.NsOp, c.NsOp, ratio, b.AllocsOp, c.AllocsOp, verdict)
	}
	for name := range cur {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("%-44s (no baseline; add with -exp benchbaseline)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchmark gate passed: %d benchmarks within limits\n", len(names))
	return nil
}
