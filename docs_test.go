package skyserver

// Documentation gates, run by the CI docs job (and by every plain
// `go test ./...`): intra-repo markdown links must resolve, and the
// packages whose APIs contributors program against — internal/sched and
// internal/sqlengine — must document every exported identifier in the
// form `go vet`, golint and revive's exported rule expect.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails on intra-repository markdown links whose
// target file does not exist. External links (with a URL scheme) and
// pure in-page anchors are out of scope — this guards against the docs
// drifting from the tree, not against the internet.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		// SNIPPETS.md quotes exemplar files from other repositories
		// verbatim, including their relative links; it is reference
		// material, not part of this repo's doc graph.
		if strings.HasSuffix(path, ".md") && path != "SNIPPETS.md" {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found; is the test running at the repo root?")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" { // in-page anchor
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[0], resolved)
			}
		}
	}
	t.Logf("checked %d markdown files", len(mdFiles))
}

// muxRoute matches route registrations in internal/web/web.go:
// s.mux.HandleFunc("<path>", ...).
var muxRoute = regexp.MustCompile(`HandleFunc\("([^"]+)"`)

// TestEndpointDocCoverage fails when a route registered in
// internal/web/web.go is missing from docs/ops.md — every endpoint the
// server exposes (including the status/health surface) must be in the
// operations reference. The home page "/" is exempt.
func TestEndpointDocCoverage(t *testing.T) {
	src, err := os.ReadFile("internal/web/web.go")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := os.ReadFile("docs/ops.md")
	if err != nil {
		t.Fatal(err)
	}
	routes := muxRoute.FindAllStringSubmatch(string(src), -1)
	if len(routes) < 5 {
		t.Fatalf("found only %d routes in internal/web/web.go; did registration move?", len(routes))
	}
	for _, m := range routes {
		path := m[1]
		if path == "/" {
			continue
		}
		if !strings.Contains(string(ops), path) {
			t.Errorf("route %q is registered in internal/web/web.go but undocumented in docs/ops.md", path)
		}
	}
	t.Logf("checked %d routes against docs/ops.md", len(routes))
}

// docPackages are the packages held to full exported-doc coverage (the
// CI docs job also runs golangci-lint's revive exported rule over
// exactly these paths, via .golangci-docs.yml).
var docPackages = []string{"internal/sched", "internal/sqlengine"}

// TestExportedDocComments enforces what revive's exported rule checks:
// every exported top-level identifier — and every exported method on an
// exported type — carries a doc comment that starts with the
// identifier's name (an optional leading article is allowed, as in
// golint).
func TestExportedDocComments(t *testing.T) {
	for _, dir := range docPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for fname, f := range pkg.Files {
				for _, decl := range f.Decls {
					checkDecl(t, fset, fname, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, fname string, decl ast.Decl) {
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fname + ":" + itoa(p.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		// Methods count only when their receiver type is exported,
		// matching revive's default.
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		checkComment(t, pos(d), "func", d.Name.Name, d.Doc)
	case *ast.GenDecl:
		blockDoc := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if s.Doc.Text() != "" {
					checkComment(t, pos(s), "type", s.Name.Name, s.Doc)
				} else if len(d.Specs) == 1 && blockDoc {
					checkComment(t, pos(s), "type", s.Name.Name, d.Doc)
				} else {
					t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					// A documented block covers its members (grouped
					// consts/vars); a lone spec must name itself.
					if !blockDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
						t.Errorf("%s: exported value %s has no doc comment", pos(n), n.Name)
					}
				}
			}
		}
	}
}

func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

func checkComment(t *testing.T, pos, kind, name string, doc *ast.CommentGroup) {
	text := doc.Text()
	if text == "" {
		t.Errorf("%s: exported %s %s has no doc comment", pos, kind, name)
		return
	}
	if strings.HasPrefix(text, "Deprecated:") {
		return
	}
	for _, article := range []string{"", "A ", "An ", "The "} {
		if strings.HasPrefix(text, article+name+" ") || strings.HasPrefix(text, article+name+"'") {
			return
		}
	}
	t.Errorf("%s: comment on exported %s %s should be of the form %q", pos, kind, name, name+" ...")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
