// Personal: the "personal SkyServer" of §10 — carve a laptop-sized subset
// of the sky out of the full server and show that it still answers the
// paper's queries ("essentially, any classroom can have a mini-SkyServer
// per student").
package main

import (
	"fmt"
	"log"

	"skyserver/internal/core"
	"skyserver/internal/queries"
)

func main() {
	sky, err := core.Open(core.Config{Scale: 1.0 / 1000, SkipFrames: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sky.Close()
	fmt.Printf("full server: %d photo objects, %d spectra\n",
		sky.DB().PhotoObj.Rows(), sky.DB().SpecObj.Rows())

	// Carve out a window around the planted cluster at (185, -0.5) — the
	// classroom slice. Every dependent table comes along: profiles,
	// spectra, lines, redshifts, frames, neighbors.
	sub, err := sky.PersonalSubset(184.5, 185.5, -1.0, 0.0)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	frac := 100 * float64(sub.DB().PhotoObj.Rows()) / float64(sky.DB().PhotoObj.Rows())
	fmt.Printf("personal subset: %d photo objects (%.1f%% of the sky), %d spectra, %d frames\n\n",
		sub.DB().PhotoObj.Rows(), frac, sub.DB().SpecObj.Rows(), sub.DB().Frame.Rows())

	// Referential integrity survived the cut.
	for _, table := range []string{"Profile", "SpecObj", "SpecLine", "Frame", "Neighbors"} {
		if n, err := sub.Loader().CheckIntegrity(table); err != nil {
			log.Fatalf("%s integrity: %v", table, err)
		} else {
			fmt.Printf("integrity ok: %-13s (%d rows checked)\n", table, n)
		}
	}

	// The famous Query 1 still answers 19 inside the subset.
	res, err := sub.Query(queries.Q1SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery 1 on the personal subset: %d galaxies (paper: 19)\n", len(res.Rows))

	// And the mini-server is a full server: views, spatial functions,
	// temp tables all work.
	res, err = sub.Query(`
		select top 5 objID, ra, dec, r from Galaxy order by r`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbrightest galaxies in the classroom sky:")
	for _, row := range res.Rows {
		fmt.Printf("  %d  ra %.4f  dec %+.4f  r=%.2f\n", row[0].I, row[1].F, row[2].F, row[3].F)
	}
}
