// Datamining: run the paper's full 22-query evaluation workload (§3, §11,
// Figure 13) against a synthetic survey and print the timing table —
// including the planted-truth checks for Q1 (19 galaxies), Q15A (the
// asteroid census) and Q15B (4 NEO pairs).
package main

import (
	"flag"
	"fmt"
	"log"

	"skyserver/internal/core"
	"skyserver/internal/queries"
	"skyserver/internal/sqlengine"
)

func main() {
	scale := flag.Float64("scale", 1.0/1000, "survey scale as a fraction of the 14M-object EDR")
	flag.Parse()

	log.Printf("building survey at scale 1/%.0f …", 1 / *scale)
	sky, err := core.Open(core.Config{Scale: *scale, SkipFrames: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sky.Close()
	log.Printf("%d photo objects loaded; running the workload", sky.DB().PhotoObj.Rows())

	fmt.Printf("\n%-5s %-45s %8s %10s %10s  %s\n", "id", "title", "rows", "cpu(s)", "wall(s)", "check")
	for _, q := range queries.All() {
		s := sky.Session()
		tm := queries.Run(s, q, sky.Truth(), sqlengine.ExecOptions{})
		check := "ok"
		if tm.Err != nil {
			check = tm.Err.Error()
		}
		fmt.Printf("%-5s %-45s %8d %10.3f %10.3f  %s\n",
			"Q"+q.ID, truncate(q.Title, 45), tm.Rows, tm.CPU.Seconds(), tm.Elapsed.Seconds(), check)
	}
	fmt.Println("\nQ1, Q15A and Q15B validate against the generator's planted truths;")
	fmt.Println("the others are checked for plausibility (see internal/queries).")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
