// Explorer: drive the SkyServer web API end-to-end, the way the §2 site
// works — start the server in-process, browse the famous-places gallery,
// drill into an object (Figure 2), fetch a pan-zoom cutout tile, query the
// schema browser, and run SQL over HTTP in several output formats. The
// access log the session produces is then fed to the §7 traffic analyzer.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"

	"skyserver/internal/core"
	"skyserver/internal/pyramid"
	"skyserver/internal/traffic"
	"skyserver/internal/web"
)

func main() {
	sky, err := core.Open(core.Config{Scale: 1.0 / 2000})
	if err != nil {
		log.Fatal(err)
	}
	defer sky.Close()

	var accessLog bytes.Buffer
	ts := httptest.NewServer(sky.Handler(web.Options{Public: true, AccessLog: &accessLog}))
	defer ts.Close()
	fmt.Println("SkyServer running at", ts.URL)

	// 1. The famous-places gallery.
	body := get(ts.URL + "/en/tools/places/")
	ids := regexp.MustCompile(`obj\.asp\?id=(\d+)`).FindAllStringSubmatch(body, -1)
	fmt.Printf("famous places lists %d objects\n", len(ids))

	// 2. Drill into the first one (Figure 2's explore page).
	objURL := ts.URL + "/en/tools/explore/obj.asp?id=" + ids[0][1]
	page := get(objURL)
	fmt.Printf("explorer page for object %s: %d bytes (full record: %d bytes)\n",
		ids[0][1], len(page), len(get(objURL+"&full=1")))

	// 3. Pan-zoom: fetch the tile covering the planted cluster at each
	// zoom level.
	for _, zoom := range []int{1, 2, 4, 8} {
		blob := get(fmt.Sprintf("%s/en/tools/navi/cutout?ra=185&dec=-0.5&zoom=%d", ts.URL, zoom))
		tile, err := pyramid.Decode([]byte(blob))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zoom %d tile: %dx%d px, %d bytes\n", zoom, tile.Size, tile.Size, len(blob))
	}

	// 4. SQL over HTTP, three formats.
	q := url.QueryEscape("select top 3 objID, ra, dec, r from Galaxy order by r")
	for _, format := range []string{"csv", "json", "fits"} {
		body := get(ts.URL + "/x/sql?format=" + format + "&cmd=" + q)
		fmt.Printf("--- %s ---\n%s\n", format, firstLines(body, 5))
	}

	// 5. The schema browser feed SkyServerQA renders.
	var doc struct {
		Tables []struct {
			Name string `json:"name"`
			Rows uint64 `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(get(ts.URL+"/en/help/docs/browser.asp")), &doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema browser tables:")
	for _, tb := range doc.Tables {
		fmt.Printf("  %-15s %8d rows\n", tb.Name, tb.Rows)
	}

	// 6. This session's own access log through the §7 analyzer.
	rep, err := traffic.Analyze(bytes.NewReader(accessLog.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthis session per the traffic analyzer: %d hits, %d page views, %d sessions\n",
		rep.Hits, rep.Pages, rep.Sessions)
}

func get(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != 200 {
		log.Fatalf("GET %s: %d %s", u, resp.StatusCode, b)
	}
	return string(b)
}

func firstLines(s string, n int) string {
	out := ""
	for i, line := range bytes.Split([]byte(s), []byte("\n")) {
		if i >= n {
			out += "…\n"
			break
		}
		out += string(line) + "\n"
	}
	return out
}
