// Quickstart: build a small synthetic SkyServer and ask it questions —
// the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"skyserver/internal/core"
)

func main() {
	// A 1/2000-scale survey: ~9k photo objects, ~30 spectra, loads in
	// about a second.
	sky, err := core.Open(core.Config{Scale: 1.0 / 2000, SkipFrames: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sky.Close()

	fmt.Printf("loaded %d photo objects, %d spectra\n\n",
		sky.DB().PhotoObj.Rows(), sky.DB().SpecObj.Rows())

	// 1. Plain SQL: how many primary galaxies?
	res, err := sky.Query("select count(*) as galaxies from Galaxy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary galaxies: %s\n\n", res.Rows[0][0].String())

	// 2. The paper's Query 1, verbatim: galaxies without saturated pixels
	// within 1 arcminute of (185, -0.5). The synthetic sky plants the
	// paper's answer: 19.
	res, err = sky.Query(`
		declare @saturated bigint;
		set @saturated = dbo.fPhotoFlags('saturated');
		select G.objID, GN.distance
		from Galaxy as G
		join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID
		where (G.flags & @saturated) = 0
		order by distance`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 1 found %d galaxies (paper: 19); nearest at %.3f arcmin\n\n",
		len(res.Rows), res.Rows[0][1].F)

	// 3. Look at the plan the engine chose — the nested-loop join over
	// the HTM spatial function of Figure 10.
	plan, err := sky.Explain(`
		select G.objID from Galaxy as G
		join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the plan:\n%s\n", plan)

	// 4. Public-server limits: big results truncate at 1,000 rows.
	res, err = sky.QueryPublic("select objID from PhotoObj")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public query truncated: %v after %d rows (the §4 limit)\n",
		res.Truncated, len(res.Rows))
}
