// Education: the "discover the expanding universe" project of §6/Figure 4.
// Students plot a Hubble diagram — galaxy magnitude (a stand-in for
// distance) against redshift — straight from SQL, exactly as the SkyServer
// classroom exercise does. The synthetic spectra follow a Hubble-like
// relation, so the diagram shows the famous rising trend.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"skyserver/internal/core"
)

func main() {
	sky, err := core.Open(core.Config{Scale: 1.0 / 1000, SkipFrames: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sky.Close()

	// The student query: confident galaxy spectra joined to photometry.
	res, err := sky.Query(`
		select s.z, p.r
		from SpecObj s
		join PhotoObj p on p.objID = s.objID
		where s.specClass = 2 and s.zConf > 0.9 and s.z between 0.003 and 0.5
		order by s.z`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d galaxies with spectra\n\n", len(res.Rows))

	// Bin into the Figure 4 axes: redshift 0..0.5, magnitude 15..20.
	const (
		zBins   = 25
		magRows = 12
		magMin  = 14.0
		magMax  = 20.0
	)
	grid := make([][]int, magRows)
	for i := range grid {
		grid[i] = make([]int, zBins)
	}
	count := 0
	for _, row := range res.Rows {
		z, m := row[0].F, row[1].F
		zi := int(z / 0.5 * zBins)
		mi := int((m - magMin) / (magMax - magMin) * magRows)
		if zi >= 0 && zi < zBins && mi >= 0 && mi < magRows {
			grid[mi][zi]++
			count++
		}
	}

	fmt.Println("Sample student Hubble diagram (magnitude vs redshift):")
	for mi := 0; mi < magRows; mi++ {
		mag := magMin + (float64(mi)+0.5)*(magMax-magMin)/magRows
		var sb strings.Builder
		for zi := 0; zi < zBins; zi++ {
			switch n := grid[mi][zi]; {
			case n == 0:
				sb.WriteByte(' ')
			case n < 3:
				sb.WriteByte('.')
			case n < 8:
				sb.WriteByte('o')
			default:
				sb.WriteByte('@')
			}
		}
		fmt.Printf("%5.1f |%s\n", mag, sb.String())
	}
	fmt.Printf("      +%s\n", strings.Repeat("-", zBins))
	fmt.Printf("      0.0%sredshift%s0.5\n", strings.Repeat(" ", 4), strings.Repeat(" ", 5))

	// The discovery: fainter (more distant) galaxies recede faster.
	// Compute the rank correlation the teacher's answer sheet expects.
	var sumZ, sumM float64
	for _, row := range res.Rows {
		sumZ += row[0].F
		sumM += row[1].F
	}
	n := float64(len(res.Rows))
	meanZ, meanM := sumZ/n, sumM/n
	var cov, varZ, varM float64
	for _, row := range res.Rows {
		dz, dm := row[0].F-meanZ, row[1].F-meanM
		cov += dz * dm
		varZ += dz * dz
		varM += dm * dm
	}
	r := cov / math.Sqrt(varZ*varM)
	fmt.Printf("\ncorrelation(redshift, magnitude) = %.2f — the universe expands!\n", r)
	fmt.Printf("(%d of %d galaxies fall inside the plot window)\n", count, len(res.Rows))
}
