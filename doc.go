// Package skyserver is a from-scratch Go reproduction of "The SDSS
// SkyServer — Public Access to the Sloan Digital Sky Survey Data"
// (Szalay, Gray, Thakar, Kunszt, Malik, Raddick, Stoughton, vandenBerg;
// ACM SIGMOD 2002).
//
// # Architecture
//
// The repository implements the paper's whole stack around a vectorized
// relational engine. Data moves through the system in columnar row-batches
// (val.Batch: up to 1,024 rows as per-column slices with a selection
// vector) rather than one row at a time:
//
//   - internal/storage lays slotted 8 KB pages across simulated striped
//     volumes behind a page cache, and its heap scan delivers page-worth
//     record slices per callback (Heap.ScanBatches) so decode costs
//     amortize across a page.
//   - internal/val defines the tagged value codec shared by storage, the
//     B+tree (internal/btree), and the engine — plus the Batch type the
//     executor flows. Batches prune columns the planner proves unread: a
//     scan of the ~220-column PhotoObj that touches three columns
//     materializes three column arrays, not 220.
//   - internal/sqlengine parses the paper's T-SQL dialect, plans access
//     paths (covering-index scans replacing the paper's tag tables, index
//     seeks from dive-based cardinality estimates, index-probe nested
//     loops), and executes on a batch push model: every operator — scans,
//     joins, filter, project, aggregate, sort, distinct, top — consumes
//     and emits val.Batch. Filters and projections compile twice: to
//     vectorized kernels that process a whole batch per call (writing
//     selection vectors in place, with AND/OR preserving the row path's
//     short-circuit evaluation order and CASE evaluating each arm only on
//     the rows that reach it), and to a row-at-a-time fallback that
//     handles the shapes the kernels don't and serves as the semantic
//     oracle in the equivalence tests (ExecOptions.ForceRowExprs).
//   - Results stream batch-wise out of the engine: Session.ExecStream
//     hands each result batch to a sink, and internal/web's SQL endpoint
//     serializes HTTP responses (CSV, JSON, XML, HTML) directly from the
//     columnar batches with the paper's public limits (1,000 rows / 30
//     seconds) applied by truncating the final batch. Serializers keep
//     one reused output buffer per stream and render every value through
//     val.Value.AppendString with no per-row allocation — CSV quoting and
//     JSON escaping/number formatting are direct buffer appends that
//     match encoding/csv's and encoding/json's wire output.
//
// # Query lifecycle and the plan cache
//
// A statement moves through parse → parameterize → compile → (cached) →
// bind → execute. Session.Exec first lexes the text and normalizes the
// token stream (sqlengine/normalize.go): literals are extracted into a
// parameter vector and the remaining shape — folded identifiers,
// operators, parameter slots — becomes the cache key, so WHERE objID = 123
// and WHERE objID = 456 are one shape. The key is probed against the
// DB-wide PlanCache shared by every session. On a hit, the immutable
// CompiledPlan executes immediately with the fresh parameter values bound
// through ExecCtx.Params — no parsing, no planning. On a miss, the parser
// replaces each extracted literal with a ParamExpr, the planner compiles
// a CompiledPlan (operator tree, output schema, EXPLAIN text, and the
// referenced tables' data versions), execution proceeds, and a cacheable
// statement stores the plan for every later session.
//
// Cacheability rules: only a single SELECT with no INTO target and no
// session-local references — no @variables and no #temp tables — is
// cached; everything else (DML, DDL, multi-statement batches) executes
// from its AST each time. Literals that shape the plan stay structural
// rather than parameterized: the count after TOP, number literals in
// ORDER BY (ordinals), and the kind of every parameter (an int and a
// float literal never share a slot, since arithmetic and output schema
// kinds differ). Equal literals deduplicate to one parameter slot so
// GROUP BY expressions keep matching their select-list copies
// structurally after parameterization.
//
// Invalidation is lazy, at lookup: a cached plan records the catalog's
// schema version (any CREATE/DROP of tables, indexes, or views bumps it —
// after DROP INDEX a stale plan would probe an unmaintained tree) and
// each referenced table's DML counter (inserts and deletes age the dive
// based cardinality estimates the access path was chosen from). A stale
// entry is evicted and recompiled on next use. Entries are LRU-evicted
// against a byte budget, counters are exposed via PlanCache.Stats (and
// the web front end's /x/plancache endpoint), and
// ExecOptions.DisablePlanCache bypasses the cache entirely — the
// pre-cache pipeline that the cached-vs-fresh Q1–Q20 equivalence test
// uses as its oracle, mirroring DisablePooling.
//
// # Batch memory lifecycle
//
// Steady-state execution is allocation-free: batches, column arrays, and
// kernel scratch recycle through sync.Pool-backed pools in internal/val.
// The ownership rules:
//
//   - Whoever acquires releases. Each operator that produces batches
//     acquires them from val.GetBatch (via ExecCtx.getBatch) at Run start
//     and Releases them after its child's Run returns — by then the last
//     emit that could reference the batch has completed, because the
//     batch contract forbids consumers from retaining a batch past the
//     emit callback. Released column arrays recycle through size-classed
//     pools (a small class serves index seeks whose plan-time dive
//     proved a handful of rows; everything else uses full
//     val.BatchSize), and a batch shell keeps its arrays attached so the
//     common same-query-shape steady state touches no pool at all.
//     Double-release panics; forgetting to release leaks nothing (the GC
//     reclaims unpooled memory).
//   - Scratch is per-worker. Compiled expression kernels are shared by
//     every parallel scan worker, so the vectors they compute into come
//     from a val.Arena owned by the calling worker (each scan worker,
//     and each serialized operator, holds its own). Arenas bump-allocate
//     and recycle wholesale: the batch-level entry points (filter,
//     appendTo) Reset the arena once per batch, after which every vector
//     from the previous batch is free. Arena memory is not zeroed, so
//     kernels write every active position, including explicit NULLs.
//   - Values outlive batches. Recycling reuses only batch structure and
//     column arrays; a Value's string or blob backing bytes are fresh
//     per decode and never recycled, so copied-out Values (aggregation
//     keys, sort rows, results) stay valid forever.
//   - ExecOptions.DisablePooling allocates everything fresh — the debug
//     oracle internal/queries' equivalence test runs the Q1–Q20 workload
//     against to prove recycling never corrupts results.
//
// # Query scheduler: worker pool and admission control
//
// internal/sched governs how queries share the machine, the answer to
// §7's operational story (2.5M hits in seven months with 20× television
// driven spikes):
//
//   - A persistent scan-worker pool (sched.Pool) lives on the storage
//     FileGroup for the life of the database. Parallel heap scans no
//     longer spawn goroutines per query: Heap.ScanBatches dispatches
//     shard tasks onto the pool, and shards claim pages in morsel-sized
//     chunks from per-stripe atomic counters. Shard w drains stripe w
//     first (pages ≡ w mod dop — one volume per worker when dop equals
//     the stripe width, the paper's parallel prefetch model) and then
//     steals leftovers from other stripes, so a shard the pool schedules
//     late never strands work. One shard always runs on the submitting
//     goroutine, so a saturated pool degrades to inline execution instead
//     of deadlocking. Worker errors are joined (errors.Join), not
//     first-one-wins.
//   - Every query carries a context.Context (Session.ExecContext /
//     ExecStreamContext): operators poll cancellation at batch
//     boundaries, the storage scan loop checks it between morsels, and a
//     closed HTTP connection or expired deadline aborts the query with
//     ErrCanceled / ErrTimeout within one batch. ExecOptions gained
//     Deadline (absolute; the earlier of it and Timeout wins) and
//     MaxConcurrency (caps one query's scan parallelism).
//   - The web layer admits query-running requests through a
//     workload-class admission gate (sched.Scheduler). The planner
//     classifies every plan at compile time — dive-proven index seeks
//     and small TVF probes are interactive, heap scans and large sweeps
//     are batch (sqlengine.QueryClass, cached with the plan; the web
//     gate classifies pre-admission from the cache alone via
//     Session.ClassifyCached, never compiling unadmitted text, with
//     unknown shapes admitted conservatively as batch) — and each class
//     owns a bounded FIFO queue with weighted running slots: interactive
//     queries hold a hard reservation and dequeue with priority (never
//     rejected while a reserved slot is free), batch queries may borrow
//     idle capacity but never past a waiting interactive query.
//     Everything beyond slots and queue bounds is shed immediately with
//     a well-formed 503 plus Retry-After; every gated response carries
//     X-Query-Class, and clients may downgrade to ?class=batch (never
//     escalate — the reservation is not client-claimable). Per-query and
//     per-class statistics — queue wait, execution time, pages and rows
//     scanned — aggregate at the /x/sched endpoint next to the pool's
//     counters (the endpoint itself is ungated so operators can watch
//     an overloaded server shed load). cmd/skyserver exposes
//     -scanworkers, -interactive-slots, -batch-slots,
//     -queuedepth-interactive, -queuedepth-batch and -timeout.
//
// Around the engine sit the Hierarchical Triangular Mesh spatial index
// (internal/htm); the SDSS snowflake schema with subclassing views and
// spatial table-valued functions (internal/schema); a deterministic
// synthetic survey pipeline with planted query answers
// (internal/pipeline); the journaled, undoable load pipeline
// (internal/load); the Neighbors materialized view (internal/neighbors);
// the image pyramid (internal/pyramid); the web front end
// (internal/web); and the traffic analytics of the paper's operations
// study (internal/traffic).
//
// Package core ties them together; cmd/skybench regenerates every table and
// figure of the paper's evaluation; bench_test.go (this directory) wraps
// those experiments as standard Go benchmarks — including
// BenchmarkBatchVsRowFilter, which isolates the vectorized-vs-row-fallback
// gap.
//
// # Where to read more
//
// Each internal package carries its own doc comment with the §-references
// it reproduces — start with internal/sqlengine (the engine and its
// planner), internal/sched (worker pool + class admission),
// internal/storage (pages, volumes, the disk model), internal/val (the
// value/batch representation and pooling contract), and internal/web (the
// HTTP surface). Repository-level documents:
//
//   - ARCHITECTURE.md — the full query lifecycle (parse → parameterize →
//     compile/cache → classify → admit → bind → schedule → scan-pool
//     execute → stream), a package-by-package tour with file pointers,
//     and the pooling/ownership rules.
//   - docs/ops.md — the operational surface: every cmd/skyserver flag and
//     the /x/sched and /x/plancache endpoint fields.
//   - docs/benchmarks.md — the measured PR-by-PR performance trajectory
//     and the benchmark-regression workflow (skybench -exp benchdiff).
//   - ROADMAP.md — the north star and open items.
package skyserver
