// Package skyserver is a from-scratch Go reproduction of "The SDSS
// SkyServer — Public Access to the Sloan Digital Sky Survey Data"
// (Szalay, Gray, Thakar, Kunszt, Malik, Raddick, Stoughton, vandenBerg;
// ACM SIGMOD 2002).
//
// The repository implements the paper's whole stack: a relational engine
// with the SQL dialect the paper's twenty queries use (internal/sqlengine)
// over slotted pages striped across simulated disks (internal/storage) and
// B+tree indices with included columns (internal/btree); the Hierarchical
// Triangular Mesh spatial index (internal/htm); the SDSS snowflake schema
// with subclassing views and spatial table-valued functions
// (internal/schema); a deterministic synthetic survey pipeline with planted
// query answers (internal/pipeline); the journaled, undoable load pipeline
// (internal/load); the Neighbors materialized view (internal/neighbors);
// the image pyramid (internal/pyramid); the web front end with the public
// query limits (internal/web); and the traffic analytics of the paper's
// operations study (internal/traffic).
//
// Package core ties them together; cmd/skybench regenerates every table and
// figure of the paper's evaluation; bench_test.go (this directory) wraps
// those experiments as standard Go benchmarks. See README.md, DESIGN.md
// and EXPERIMENTS.md.
package skyserver
